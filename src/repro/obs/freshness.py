"""Per-producer completeness / staleness / lag tracking on an aggregator.

§IV-A quantifies over-capacity operation by *completeness* — the
fraction of expected sampler transactions that actually reached a
store.  Until now that number existed only as an end-of-run experiment
statistic (``delivered / expected`` computed from store rows).  The
:class:`FreshnessTracker` makes it a live, per-producer signal on the
aggregator, computed from the same evidence an operator has: the DGN
and transaction timestamps of the updates that arrive.

Per producer the tracker keeps a slotted :class:`ProducerFreshness`
record; the aggregator's update completion path calls
``state.observe(sample_ts, missed)`` with a *missed-interval hint* it
derives from the per-set DGN gap and transaction-timestamp gap (both
already in hand on that path — the tracker itself never touches sets).
``expected`` is derived from elapsed time: a producer armed at ``t0``
with ``n`` sets sampling every ``interval`` owes
``n * floor((now - t0) / interval - 1)`` transactions — the same
first-and-last-edge discounting the fan-in experiment's ground truth
uses (``expected = n * (duration / interval - 1)``), so at the end of a
run tracker completeness equals the experiment's delivered/expected
ratio exactly.

Cost discipline: ``arm`` returns ``None`` when the tracker is disabled,
so producers hold either a state object or ``None`` and the per-update
cost is one ``is not None`` test; ``observe`` is three attribute writes.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["FreshnessTracker", "ProducerFreshness"]


class ProducerFreshness:
    """Live freshness state of one producer connection."""

    __slots__ = ("name", "interval", "t0", "nsets",
                 "delivered", "missed", "last_ts")

    def __init__(self, name: str, interval: float, nsets: int, t0: float):
        self.name = name
        self.interval = interval
        self.t0 = t0
        self.nsets = nsets
        self.delivered = 0   # updates stored (post-validation, post-store)
        self.missed = 0      # intervals detected missed from DGN/ts gaps
        self.last_ts = 0.0   # newest transaction timestamp stored

    # Hot call — one update of each scalar, no allocation.
    def observe(self, sample_ts: float, missed: int) -> None:
        self.delivered += 1
        self.missed += missed
        if sample_ts > self.last_ts:
            self.last_ts = sample_ts

    def expected(self, now: float) -> int:
        """Transactions owed by ``now`` (fan-in ground-truth formula)."""
        if self.interval <= 0.0:
            return 0
        per_set = int((now - self.t0) / self.interval) - 1
        if per_set < 0:
            per_set = 0
        return per_set * self.nsets

    def completeness(self, now: float) -> float:
        exp = self.expected(now)
        if exp <= 0:
            return 1.0
        ratio = self.delivered / exp
        return 1.0 if ratio > 1.0 else ratio

    def staleness(self, now: float) -> float:
        """Age of the newest stored transaction (seconds)."""
        if self.delivered == 0:
            return now - self.t0
        age = now - self.last_ts
        return age if age > 0.0 else 0.0

    def lag_intervals(self, now: float) -> int:
        """Whole sampling intervals the producer is currently behind."""
        if self.interval <= 0.0:
            return 0
        lag = int(self.staleness(now) / self.interval) - 1
        return lag if lag > 0 else 0

    def as_dict(self, now: float) -> dict:
        return {
            "producer": self.name,
            "interval": self.interval,
            "nsets": self.nsets,
            "delivered": self.delivered,
            "expected": self.expected(now),
            "missed": self.missed,
            "completeness": self.completeness(now),
            "staleness": self.staleness(now),
            "lag_intervals": self.lag_intervals(now),
        }


class FreshnessTracker:
    """Registry of :class:`ProducerFreshness` states for one aggregator.

    Stale producers are detected *in real time* in the sense that every
    read of the tracker (self-set collection, ``stats``/``prof`` verbs,
    ``repro-top``) recomputes expected/staleness from the current clock
    — a producer that stops delivering shows a falling completeness and
    a growing staleness without any further updates arriving.
    """

    #: A producer is counted stale when its newest stored transaction is
    #: older than this many sampling intervals.
    STALE_AFTER = 2.0

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.states: dict[str, ProducerFreshness] = {}

    def arm(self, name: str, interval: float, nsets: int,
            now: float) -> Optional[ProducerFreshness]:
        """Start (or re-anchor) tracking a producer; ``None`` if disabled."""
        if not self.enabled:
            return None
        state = self.states.get(name)
        if state is None:
            state = self.states[name] = ProducerFreshness(
                name, interval, nsets, now)
        else:
            # Reconfigured producer (restart/promotion): keep the
            # counters, re-anchor the expectation clock.
            state.interval = interval
            state.nsets = nsets
        return state

    def disarm(self, name: str) -> None:
        self.states.pop(name, None)

    # ------------------------------------------------------------------
    # read surfaces
    # ------------------------------------------------------------------
    def fleet(self, now: float) -> dict:
        """Aggregate fleet-health row (the ``ldmsd_self`` surface).

        ``completeness`` is ``sum(delivered) / sum(expected)`` across
        producers — the exact fleet-wide delivered/expected ratio, not a
        mean of per-producer ratios — so it matches experiment ground
        truth computed from total store rows.
        """
        delivered = 0
        expected = 0
        missed = 0
        stale = 0
        worst = 0.0
        for state in self.states.values():
            delivered += state.delivered
            expected += state.expected(now)
            missed += state.missed
            age = state.staleness(now)
            if age > worst:
                worst = age
            if state.interval > 0.0 and age > self.STALE_AFTER * state.interval:
                stale += 1
        ratio = delivered / expected if expected > 0 else 1.0
        return {
            "producers": len(self.states),
            "delivered": delivered,
            "expected": expected,
            "missed": missed,
            "completeness": 1.0 if ratio > 1.0 else ratio,
            "stale_producers": stale,
            "max_staleness": worst,
        }

    def snapshot(self, now: float) -> dict:
        """Full per-producer dump (the ``prof`` / ``repro-top`` surface)."""
        out = self.fleet(now)
        out["per_producer"] = [
            state.as_dict(now)
            for _, state in sorted(self.states.items())
        ]
        return out
