"""Flow engine: per-link load accounting over a torus.

Jobs (and the monitoring system itself) register *flows* — steady
byte/s streams between nodes.  The engine routes each flow with the
torus's deterministic algorithm and maintains a ``(n_geminis, 6)``
offered-load array.  Because flows change only at job events, counter
integration between events is linear and fully vectorised:

    delivered = delivered_bandwidth(load, capacity)        # (G, 6)
    stall     = stall_fraction(load, capacity)             # (G, 6)
    traffic  += delivered * dt
    stall_ns += stall * dt * 1e9

:meth:`FlowEngine.accumulate` advances those cumulative counters; the
per-node gpcdr view (what the sampler reads) is either a live
:class:`~repro.nodefs.gpcdr.GpcdrModel` attached via
:meth:`attach_gpcdr`, or — for full-machine traces — direct access to
the counter arrays (the ``repro.sim.fleet`` fast path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.congestion import delivered_bandwidth, stall_fraction
from repro.network.torus import GeminiTorus
from repro.util.errors import SimulationError

__all__ = ["Flow", "FlowEngine"]


@dataclass
class Flow:
    """A steady stream of ``bps`` bytes/s from ``src_node`` to ``dst_node``."""

    src_node: int
    dst_node: int
    bps: float
    tag: str = ""
    # (gemini, direction) hops filled in by the engine.
    hops: list[tuple[int, int]] = field(default_factory=list, repr=False)
    active: bool = False


class FlowEngine:
    """Routes flows and integrates per-link counters."""

    def __init__(self, torus: GeminiTorus, clock=None):
        self.torus = torus
        #: Optional zero-arg "now" callable.  When set, flow mutations
        #: auto-integrate the elapsed window first (so a rate change
        #: mid-interval is accounted at the right time) and
        #: :meth:`accumulate_to` advances to the clock.
        self.clock = clock
        self._last_t = float(clock()) if clock is not None else 0.0
        G = torus.n_geminis
        self.load = np.zeros((G, 6))  # offered bytes/s per (gemini, dir)
        self.traffic = np.zeros((G, 6))  # delivered bytes, cumulative
        self.packets = np.zeros((G, 6))
        self.stall_ns = np.zeros((G, 6))
        self.capacity = np.broadcast_to(torus.capacities(), (G, 6))
        self._gpcdrs: dict[int, object] = {}
        self._last_counters: dict[int, np.ndarray] = {}
        self.flows: set[int] = set()
        self._flow_objs: dict[int, Flow] = {}
        self._next_id = 1
        self.mean_packet = 1024.0  # bytes, for the packets counter

    # ------------------------------------------------------------------
    # flows
    # ------------------------------------------------------------------
    def add_flow(self, src_node: int, dst_node: int, bps: float, tag: str = "") -> int:
        """Register a flow; returns its id.  O(path length)."""
        if bps < 0:
            raise SimulationError("flow rate must be >= 0")
        self.accumulate_to()
        flow = Flow(src_node, dst_node, bps, tag)
        src_g = self.torus.node_gemini(src_node)
        dst_g = self.torus.node_gemini(dst_node)
        flow.hops = self.torus.route(src_g, dst_g)
        for gem, d in flow.hops:
            self.load[gem, d] += bps
        flow.active = True
        fid = self._next_id
        self._next_id += 1
        self._flow_objs[fid] = flow
        self.flows.add(fid)
        return fid

    def remove_flow(self, fid: int) -> None:
        self.accumulate_to()
        flow = self._flow_objs.pop(fid, None)
        if flow is None or not flow.active:
            raise SimulationError(f"no active flow {fid}")
        for gem, d in flow.hops:
            self.load[gem, d] -= flow.bps
        flow.active = False
        self.flows.discard(fid)
        # Guard against floating-point drift going negative.
        np.clip(self.load, 0.0, None, out=self.load)

    def set_flow_rate(self, fid: int, bps: float) -> None:
        self.accumulate_to()
        flow = self._flow_objs[fid]
        delta = bps - flow.bps
        for gem, d in flow.hops:
            self.load[gem, d] += delta
        flow.bps = bps
        np.clip(self.load, 0.0, None, out=self.load)

    # ------------------------------------------------------------------
    # integration
    # ------------------------------------------------------------------
    def accumulate_to(self, now: float | None = None) -> None:
        """Integrate counters from the last sync point up to ``now``.

        A no-op when no clock is configured and ``now`` is omitted.
        """
        if now is None:
            if self.clock is None:
                return
            now = float(self.clock())
        dt = now - self._last_t
        if dt > 0:
            self.accumulate(dt)
            self._last_t = now

    def accumulate(self, dt: float) -> None:
        """Advance cumulative counters by ``dt`` seconds of current load."""
        if dt < 0:
            raise SimulationError("dt must be >= 0")
        if dt == 0:
            return
        delivered = delivered_bandwidth(self.load, self.capacity)
        stall = stall_fraction(self.load, self.capacity)
        self.traffic += delivered * dt
        self.packets += delivered * dt / self.mean_packet
        self.stall_ns += stall * dt * 1e9
        self._sync_gpcdrs()

    # -- live gpcdr views -------------------------------------------------
    def attach_gpcdr(self, gemini: int, model) -> None:
        """Mirror a Gemini's counters into a live GpcdrModel."""
        self._gpcdrs[gemini] = model
        self._last_counters[gemini] = np.zeros((3, 6))

    def _sync_gpcdrs(self) -> None:
        from repro.network.torus import DIRS

        for gem, model in self._gpcdrs.items():
            prev = self._last_counters[gem]
            cur = np.stack([self.traffic[gem], self.packets[gem], self.stall_ns[gem]])
            delta = cur - prev
            for j, d in enumerate(DIRS):
                if delta[0, j] > 0:
                    model.add_traffic(d, float(delta[0, j]), float(delta[1, j]))
                if delta[2, j] > 0:
                    model.add_stall(d, float(delta[2, j]) / 1e9)
            self._last_counters[gem] = cur

    # ------------------------------------------------------------------
    # instantaneous views
    # ------------------------------------------------------------------
    def utilization(self) -> np.ndarray:
        """(G, 6) offered load / capacity."""
        return self.load / self.capacity

    def stall_now(self) -> np.ndarray:
        """(G, 6) instantaneous stall fraction."""
        return stall_fraction(self.load, self.capacity)

    def percent_bw_now(self) -> np.ndarray:
        """(G, 6) instantaneous delivered bandwidth as % of theoretical max."""
        return 100.0 * delivered_bandwidth(self.load, self.capacity) / self.capacity

    def latency(self, src_node: int, dst_node: int, nbytes: int,
                per_hop: float = 105e-9) -> float:
        """Model one-way latency for the monitoring fabric hook.

        Base per-hop latency (Gemini ~105 ns/hop) plus serialization at
        the bottleneck link's delivered share, plus a stall penalty on
        the most congested hop of the path.
        """
        src_g = self.torus.node_gemini(src_node)
        dst_g = self.torus.node_gemini(dst_node)
        hops = self.torus.hop_count(src_g, dst_g)
        path = self.torus.route(src_g, dst_g)
        worst_stall = 0.0
        for gem, d in path:
            worst_stall = max(worst_stall, float(stall_fraction(self.load[gem, d],
                                                                self.capacity[gem, d])))
        cap = min((float(self.capacity[gem, d]) for gem, d in path), default=1e9)
        ser = nbytes / cap
        return hops * per_hop + ser * (1.0 + 4.0 * worst_stall)
