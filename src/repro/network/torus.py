"""The Gemini 3-D torus (Blue Waters' interconnect).

Geometry and routing facts used (paper §II, §VI-A):

* The network is a 3-D torus of Gemini routers; Blue Waters is
  24 x 24 x 24 (13,824 Geminis).
* Two compute nodes share one Gemini ("2 nodes share a Gemini and thus
  have the same value", §VI-A1).
* "The routing algorithm between any 2 Gemini is well-defined; thus the
  links that are involved in an application's communication paths can
  be statically determined" — Gemini uses deterministic
  dimension-ordered routing; we route X, then Y, then Z, taking the
  shorter wrap direction in each dimension.
* Link media (and hence theoretical max bandwidth, used for Fig. 10's
  percent-bandwidth) differs per dimension.  We model X and Z as cable
  links and Y as mezzanine/backplane, approximating the XE6 cabling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nodefs.gpcdr import LINK_BANDWIDTH

__all__ = ["GeminiTorus", "DIRS", "DIR_INDEX"]

DIRS = ("X+", "X-", "Y+", "Y-", "Z+", "Z-")
DIR_INDEX = {d: i for i, d in enumerate(DIRS)}

#: dimension -> media type (model choice, documented above)
DEFAULT_MEDIA = {"X": "cable", "Y": "mezzanine", "Z": "backplane"}


@dataclass(frozen=True)
class GeminiTorus:
    """Static torus geometry + deterministic routing."""

    dims: tuple[int, int, int] = (24, 24, 24)
    nodes_per_gemini: int = 2
    media: tuple[str, str, str] = (
        DEFAULT_MEDIA["X"],
        DEFAULT_MEDIA["Y"],
        DEFAULT_MEDIA["Z"],
    )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def n_geminis(self) -> int:
        x, y, z = self.dims
        return x * y * z

    @property
    def n_nodes(self) -> int:
        return self.n_geminis * self.nodes_per_gemini

    def gemini_index(self, coord: tuple[int, int, int]) -> int:
        x, y, z = coord
        dx, dy, dz = self.dims
        if not (0 <= x < dx and 0 <= y < dy and 0 <= z < dz):
            raise ValueError(f"coordinate {coord} outside torus {self.dims}")
        return (x * dy + y) * dz + z

    def coord(self, gemini: int) -> tuple[int, int, int]:
        dx, dy, dz = self.dims
        if not (0 <= gemini < self.n_geminis):
            raise ValueError(f"gemini index {gemini} out of range")
        z = gemini % dz
        y = (gemini // dz) % dy
        x = gemini // (dy * dz)
        return (x, y, z)

    def node_gemini(self, node: int) -> int:
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} out of range")
        return node // self.nodes_per_gemini

    def gemini_nodes(self, gemini: int) -> list[int]:
        base = gemini * self.nodes_per_gemini
        return list(range(base, base + self.nodes_per_gemini))

    # ------------------------------------------------------------------
    # links
    # ------------------------------------------------------------------
    def dim_media(self, dim: int) -> str:
        return self.media[dim]

    def link_capacity(self, direction: int | str) -> float:
        """Theoretical max bandwidth of a link in the given direction."""
        if isinstance(direction, str):
            direction = DIR_INDEX[direction]
        return LINK_BANDWIDTH[self.media[direction // 2]]

    def capacities(self) -> np.ndarray:
        """(6,) per-direction link capacities in bytes/s."""
        return np.array([self.link_capacity(i) for i in range(6)])

    def neighbor(self, gemini: int, direction: int | str) -> int:
        """The Gemini one hop away in the given direction (with wrap)."""
        if isinstance(direction, str):
            direction = DIR_INDEX[direction]
        dim, sign = divmod(direction, 2)
        step = 1 if sign == 0 else -1
        c = list(self.coord(gemini))
        c[dim] = (c[dim] + step) % self.dims[dim]
        return self.gemini_index(tuple(c))

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _dim_steps(self, a: int, b: int, size: int) -> tuple[int, int]:
        """(hops, direction_sign) for the shorter wrap path a -> b."""
        fwd = (b - a) % size
        back = (a - b) % size
        if fwd == 0:
            return 0, +1
        # Tie (fwd == back) routes in + (deterministic, like the mesh
        # coordinate rule Gemini applies).
        return (fwd, +1) if fwd <= back else (back, -1)

    def route(self, src_gemini: int, dst_gemini: int) -> list[tuple[int, int]]:
        """Dimension-ordered path as [(gemini, direction index), ...].

        Each entry is a link *departing* the named Gemini in the named
        direction; traversing all entries reaches ``dst_gemini``.
        """
        if src_gemini == dst_gemini:
            return []
        path: list[tuple[int, int]] = []
        cur = list(self.coord(src_gemini))
        dst = self.coord(dst_gemini)
        for dim in range(3):
            hops, sign = self._dim_steps(cur[dim], dst[dim], self.dims[dim])
            direction = dim * 2 + (0 if sign > 0 else 1)
            for _ in range(hops):
                path.append((self.gemini_index(tuple(cur)), direction))
                cur[dim] = (cur[dim] + sign) % self.dims[dim]
        assert tuple(cur) == dst
        return path

    def hop_count(self, src_gemini: int, dst_gemini: int) -> int:
        """Minimal dimension-ordered hop count (no path materialised)."""
        total = 0
        a, b = self.coord(src_gemini), self.coord(dst_gemini)
        for dim in range(3):
            hops, _ = self._dim_steps(a[dim], b[dim], self.dims[dim])
            total += hops
        return total

    def media_map(self) -> dict[str, str]:
        """direction-name -> media type (for GpcdrModel construction)."""
        return {d: self.media[DIR_INDEX[d] // 2] for d in DIRS}
