"""Interconnect models.

* :mod:`repro.network.torus` — the Cray Gemini 3-D torus (Blue Waters):
  Gemini routers at each coordinate, two nodes per Gemini, deterministic
  dimension-ordered routing, per-dimension link media types.
* :mod:`repro.network.congestion` — credit-based flow-control stall
  model mapping per-link offered load to stall-time fraction and
  delivered bandwidth.
* :mod:`repro.network.traffic` — the flow engine: jobs register flows,
  the engine routes them, accumulates per-link load, and integrates
  delivered-traffic/stall-time counters into gpcdr models over time.
* :mod:`repro.network.fattree` — a two-level Infiniband fat tree
  (Chama).
"""

from repro.network.torus import GeminiTorus, DIRS, DIR_INDEX
from repro.network.congestion import stall_fraction, delivered_bandwidth
from repro.network.traffic import Flow, FlowEngine
from repro.network.fattree import FatTree

__all__ = [
    "GeminiTorus",
    "DIRS",
    "DIR_INDEX",
    "stall_fraction",
    "delivered_bandwidth",
    "Flow",
    "FlowEngine",
    "FatTree",
]
