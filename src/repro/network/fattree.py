"""A two-level Infiniband fat tree (SNL's Chama, §III-B/§IV-G).

Chama is an Infiniband-connected commodity cluster: nodes hang off leaf
switches whose uplinks feed core switches.  We model:

* ``radix`` nodes per leaf switch;
* each leaf has ``uplinks`` links to distinct core switches;
* routing: same-leaf traffic stays on the leaf; cross-leaf traffic
  takes a deterministic uplink chosen by destination-leaf hash (static
  IB LID routing), up to the core and back down.

Per-link load/stall accounting mirrors :class:`~repro.network.traffic.
FlowEngine`, reusing the same congestion model; link capacity defaults
to QDR IB (4 GB/s).
"""

from __future__ import annotations

import numpy as np

from repro.network.congestion import delivered_bandwidth, stall_fraction
from repro.util.errors import SimulationError

__all__ = ["FatTree"]

QDR_BPS = 4.0e9


class FatTree:
    """Two-level fat tree with static routing and link-load accounting."""

    def __init__(
        self,
        n_nodes: int = 1296,  # Chama (§IV-D)
        radix: int = 18,
        uplinks: int = 9,
        link_bps: float = QDR_BPS,
    ):
        if n_nodes <= 0 or radix <= 0 or uplinks <= 0:
            raise SimulationError("fat tree parameters must be positive")
        self.n_nodes = n_nodes
        self.radix = radix
        self.uplinks = uplinks
        self.link_bps = link_bps
        self.n_leaves = (n_nodes + radix - 1) // radix
        # Link arrays: node<->leaf "access" links (up and down folded into
        # one full-duplex budget each) and leaf<->core uplinks.
        self.access_up = np.zeros(n_nodes)
        self.access_down = np.zeros(n_nodes)
        self.uplink_up = np.zeros((self.n_leaves, uplinks))
        self.uplink_down = np.zeros((self.n_leaves, uplinks))
        self._flows: dict[int, tuple] = {}
        self._next_id = 1

    def leaf_of(self, node: int) -> int:
        if not (0 <= node < self.n_nodes):
            raise SimulationError(f"node {node} out of range")
        return node // self.radix

    def _uplink_for(self, src_leaf: int, dst_leaf: int) -> int:
        # Deterministic static route (IB LID-style).
        return (src_leaf * 31 + dst_leaf * 17) % self.uplinks

    def add_flow(self, src: int, dst: int, bps: float, tag: str = "") -> int:
        sl, dl = self.leaf_of(src), self.leaf_of(dst)
        self.access_up[src] += bps
        self.access_down[dst] += bps
        up = None
        if sl != dl:
            up = self._uplink_for(sl, dl)
            self.uplink_up[sl, up] += bps
            self.uplink_down[dl, up] += bps
        fid = self._next_id
        self._next_id += 1
        self._flows[fid] = (src, dst, bps, sl, dl, up)
        return fid

    def remove_flow(self, fid: int) -> None:
        try:
            src, dst, bps, sl, dl, up = self._flows.pop(fid)
        except KeyError:
            raise SimulationError(f"no flow {fid}") from None
        self.access_up[src] -= bps
        self.access_down[dst] -= bps
        if up is not None:
            self.uplink_up[sl, up] -= bps
            self.uplink_down[dl, up] -= bps
        for arr in (self.access_up, self.access_down, self.uplink_up, self.uplink_down):
            np.clip(arr, 0.0, None, out=arr)

    # ------------------------------------------------------------------
    def node_stall(self, node: int) -> float:
        """Worst stall fraction on the node's access links."""
        return float(
            max(
                stall_fraction(self.access_up[node], self.link_bps),
                stall_fraction(self.access_down[node], self.link_bps),
            )
        )

    def path_stall(self, src: int, dst: int) -> float:
        """Worst stall fraction along the src -> dst path."""
        sl, dl = self.leaf_of(src), self.leaf_of(dst)
        worst = max(
            stall_fraction(self.access_up[src], self.link_bps),
            stall_fraction(self.access_down[dst], self.link_bps),
        )
        if sl != dl:
            up = self._uplink_for(sl, dl)
            worst = max(
                worst,
                stall_fraction(self.uplink_up[sl, up], self.link_bps),
                stall_fraction(self.uplink_down[dl, up], self.link_bps),
            )
        return float(worst)

    def node_delivered_bps(self, node: int) -> float:
        return float(
            delivered_bandwidth(self.access_up[node], self.link_bps)
            + delivered_bandwidth(self.access_down[node], self.link_bps)
        )

    def latency(self, src: int, dst: int, nbytes: int,
                per_hop: float = 1.0e-6) -> float:
        """One-way latency for the monitoring fabric hook."""
        hops = 2 if self.leaf_of(src) == self.leaf_of(dst) else 4
        ser = nbytes / self.link_bps
        return hops * per_hop + ser * (1.0 + 4.0 * self.path_stall(src, dst))
