"""Credit-based flow-control congestion model.

The Gemini network uses credit-based flow control (paper §VI-A1):
"When a source has data to send but runs out of credits for its next
hop destination, it must pause (stall) until it receives credits back."
The time a link spends in such output-credit stalls, as a fraction of
wall time, is the Fig. 9 quantity.

We model the stall fraction of a link as a smooth saturating function
of its utilization ``u = offered_load / capacity``::

    stall(u) = u^2 / (u^2 + 2)

which gives ~11% at half load, ~33% at the saturation point, and
approaches 100% as the offered load (the sum over all flows routed
through the link) far exceeds capacity — an 85% stall fraction
(the paper's observed maximum) corresponds to u ~ 3.4.

Delivered bandwidth is conservation-respecting below saturation and
capped at an efficiency factor above it::

    delivered(u) = min(offered, 0.95 * capacity)

The 95% ceiling reflects protocol overhead; the paper's observed
maximum percent-bandwidth was 63%, which arises from workload shape,
not from the cap.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stall_fraction", "delivered_bandwidth", "LINK_EFFICIENCY"]

LINK_EFFICIENCY = 0.95
_STALL_SHAPE = 2.0  # exponent
_STALL_SCALE = 2.0  # half-saturation constant


def stall_fraction(offered, capacity):
    """Fraction of wall time spent in output credit stalls.

    Parameters may be scalars or broadcastable arrays (bytes/s).
    """
    offered = np.asarray(offered, dtype=np.float64)
    capacity = np.asarray(capacity, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        u = np.where(capacity > 0, offered / capacity, 0.0)
    up = u**_STALL_SHAPE
    frac = up / (up + _STALL_SCALE)
    return frac if frac.ndim else float(frac)


def delivered_bandwidth(offered, capacity):
    """Bytes/s actually delivered on the link."""
    offered = np.asarray(offered, dtype=np.float64)
    capacity = np.asarray(capacity, dtype=np.float64)
    out = np.minimum(offered, LINK_EFFICIENCY * capacity)
    return out if out.ndim else float(out)
