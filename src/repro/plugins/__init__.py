"""LDMS plugins: samplers and stores.

Importing :mod:`repro.plugins.samplers` / :mod:`repro.plugins.stores`
populates the corresponding registries used by
``Ldmsd.load_sampler`` / ``Ldmsd.add_store``.
"""

from repro.plugins import samplers, stores  # noqa: F401  (registration side effects)

__all__ = ["samplers", "stores"]
