"""Flat-file store: one file per metric name.

Paper §IV-A: "The flat file storage is available in ... a file per
metric name (e.g. Active and Cached memory are stored in 2 separate
files)".  Each line is ``<timestamp> <component_id> <value>``.
"""

from __future__ import annotations

import os
import re
from typing import TextIO

from repro.core.store import StorePlugin, StoreRecord, register_store
from repro.util.errors import ConfigError

__all__ = ["FlatFileStore"]

_UNSAFE = re.compile(r"[^A-Za-z0-9._#+-]")


@register_store("flatfile")
class FlatFileStore(StorePlugin):
    """One append-only file per (schema, metric name).

    Config options
    --------------
    path:
        Container directory; files land in ``<path>/<schema>/<metric>``.
    buffer_lines:
        Per-file buffered lines before an OS write (default 64).
    """

    def config(self, path: str = "", buffer_lines=64, **kwargs) -> None:
        super().config(**kwargs)
        if not path:
            raise ConfigError("flatfile: path= is required")
        self.path = path
        self.buffer_lines = int(buffer_lines)
        self._files: dict[tuple[str, str], TextIO] = {}
        self._buffers: dict[tuple[str, str], list[str]] = {}
        self._bytes = 0

    def _handle(self, schema: str, metric: str) -> tuple[str, str]:
        key = (schema, metric)
        if key not in self._files:
            d = os.path.join(self.path, _UNSAFE.sub("_", schema))
            os.makedirs(d, exist_ok=True)
            self._files[key] = open(
                os.path.join(d, _UNSAFE.sub("_", metric)), "a", encoding="utf-8"
            )
            self._buffers[key] = []
        return key

    def store(self, record: StoreRecord) -> None:
        for name, comp_id, value in zip(record.names, record.component_ids, record.values):
            key = self._handle(record.schema, name)
            buf = self._buffers[key]
            buf.append(f"{record.timestamp:.6f} {comp_id} {value}\n")
            if len(buf) >= self.buffer_lines:
                self._drain(key)

    def _drain(self, key: tuple[str, str]) -> None:
        buf = self._buffers[key]
        if buf:
            text = "".join(buf)
            self._files[key].write(text)
            self._bytes += len(text)
            buf.clear()

    def flush(self) -> None:
        for key in list(self._files):
            self._drain(key)
            self._files[key].flush()

    def close(self) -> None:
        self.flush()
        for f in self._files.values():
            f.close()
        self._files.clear()

    def bytes_written(self) -> int:
        return self._bytes
