"""Store plugins.

Paper §IV-A: "Storage plugins write in a variety of formats.  Currently
these include MySQL, flat file, and a proprietary structured file
format called Scalable Object Store (SOS).  The flat file storage is
available in either a file per metric name, or a CSV file per metric
set."

Provided here:

========== ================================================== =========
name       format                                             module
========== ================================================== =========
store_csv  one CSV file per schema (file per metric set)      csv_store
flatfile   one flat file per metric name                      flatfile
sos        binary records + time index (SOS stand-in)         sos
memory     in-memory queryable rows (tests/analysis; the      memstore
           MySQL-role store)
========== ================================================== =========
"""

from repro.plugins.stores.csv_store import CsvStore
from repro.plugins.stores.flatfile import FlatFileStore
from repro.plugins.stores.sos import SosStore
from repro.plugins.stores.memstore import MemoryStore

__all__ = ["CsvStore", "FlatFileStore", "SosStore", "MemoryStore"]
