"""In-memory store with a small query API.

Plays the role LDMS's MySQL store plays in the paper's deployments: a
queryable backend the analysis layer reads (the NCSA ISC database role,
§IV-F).  Also the store of choice in tests and the simulator's
experiments, where rows feed straight into NumPy.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.store import StorePlugin, StoreRecord, register_store

__all__ = ["MemoryStore"]


@register_store("memory")
class MemoryStore(StorePlugin):
    """Keeps every record; provides per-metric time-series extraction.

    Config options
    --------------
    max_rows:
        Retention cap; when set, the oldest rows are evicted (counted
        into ``records_dropped``) as new ones arrive.  Default: keep
        everything, which is what tests and the analysis layer want.
    """

    def config(self, max_rows=None, **kwargs) -> None:
        super().config(**kwargs)
        self.rows: list[StoreRecord] = []
        self.max_rows = int(max_rows) if max_rows is not None else None
        if self.max_rows is not None and self.max_rows < 1:
            raise ValueError("memory store: max_rows must be >= 1")

    def store(self, record: StoreRecord) -> None:
        self.rows.append(record)
        if self.max_rows is not None and len(self.rows) > self.max_rows:
            evict = len(self.rows) - self.max_rows
            del self.rows[:evict]
            self.records_dropped += evict

    def store_many(self, records: list[StoreRecord]) -> None:
        """Vectorized append: one extend + one eviction pass per batch."""
        self.rows.extend(records)
        if self.max_rows is not None and len(self.rows) > self.max_rows:
            evict = len(self.rows) - self.max_rows
            del self.rows[:evict]
            self.records_dropped += evict

    def flush(self) -> None:
        """No-op: rows are already durable to the store's consumers.

        Memory *is* this store's backend (the query API below reads
        ``self.rows`` directly), so there is nothing to push further;
        retention is bounded by ``max_rows``, not by flushing.
        """

    # -- queries ---------------------------------------------------------
    def producers(self) -> list[str]:
        return sorted({r.producer for r in self.rows})

    def schemas(self) -> list[str]:
        return sorted({r.schema for r in self.rows})

    def set_names(self) -> list[str]:
        return sorted({r.set_name for r in self.rows})

    def component_ids(self) -> list[int]:
        return sorted({c for r in self.rows for c in set(r.component_ids)})

    def select(
        self,
        schema: str | None = None,
        producer: str | None = None,
        set_name: str | None = None,
        t0: float | None = None,
        t1: float | None = None,
    ) -> list[StoreRecord]:
        def keep(r: StoreRecord) -> bool:
            if schema is not None and r.schema != schema:
                return False
            if producer is not None and r.producer != producer:
                return False
            if set_name is not None and r.set_name != set_name:
                return False
            if t0 is not None and r.timestamp < t0:
                return False
            if t1 is not None and r.timestamp >= t1:
                return False
            return True

        return [r for r in self.rows if keep(r)]

    def series(
        self,
        metric: str,
        schema: str | None = None,
        producer: str | None = None,
        set_name: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(timestamps, values) arrays for one metric.

        Filter by ``producer`` (who the aggregator pulled from) or by
        ``set_name`` (which survives multi-level aggregation — set
        names are origin-unique, e.g. ``"n0/meminfo"``).
        """
        ts, vs = [], []
        for r in self.select(schema=schema, producer=producer, set_name=set_name):
            try:
                i = r.names.index(metric)
            except ValueError:
                continue
            ts.append(r.timestamp)
            vs.append(r.values[i])
        return np.asarray(ts, dtype=np.float64), np.asarray(vs, dtype=np.float64)

    def matrix(
        self,
        metric: str,
        set_names: Iterable[str] | None = None,
        producers: Iterable[str] | None = None,
        schema: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(times, rows x times value grid) for one metric.

        Rows are keyed by set name (default) or by producer.  Times are
        the union of observed timestamps rounded to 1 ms; missing
        samples are NaN.  This is the node x time layout the paper's
        Figs. 9-12 plot.
        """
        if (set_names is None) == (producers is None):
            raise ValueError("pass exactly one of set_names / producers")
        if set_names is not None:
            keys = list(set_names)
            series = {k: self.series(metric, schema=schema, set_name=k) for k in keys}
        else:
            keys = list(producers)
            series = {k: self.series(metric, schema=schema, producer=k) for k in keys}
        all_t = sorted({round(float(t), 3) for ts, _ in series.values() for t in ts})
        t_index = {t: j for j, t in enumerate(all_t)}
        grid = np.full((len(keys), len(all_t)), np.nan)
        for i, k in enumerate(keys):
            ts, vs = series[k]
            for t, v in zip(ts, vs):
                grid[i, t_index[round(float(t), 3)]] = v
        return np.asarray(all_t), grid
