"""SOS store: binary records with a time index.

A stand-in for LDMS's Scalable Object Store: per schema, a pair of
files —

* ``<schema>.sos``  — fixed-width little-endian records:
  ``f64 timestamp | u32 comp_id | u32 card | card x f64 values``;
* ``<schema>.sidx`` — ``(f64 timestamp, u64 offset)`` pairs enabling
  binary-searched time-range scans without reading the data file.

The first record freezes the schema's metric names into a JSON sidecar
``<schema>.schema.json`` so readers can label columns.

:class:`SosReader` provides the query side (used by the analysis
modules): iterate records, or select a [t0, t1) time range.
"""

from __future__ import annotations

import bisect
import json
import os
import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator

from repro.core.store import StorePlugin, StoreRecord, register_store
from repro.util.errors import ConfigError, StoreError

__all__ = ["SosStore", "SosReader"]

_REC_HDR = struct.Struct("<dII")
_IDX_ENT = struct.Struct("<dQ")


@register_store("sos")
class SosStore(StorePlugin):
    """Binary time-indexed store.

    Config options
    --------------
    path:
        Container directory.
    """

    def config(self, path: str = "", **kwargs) -> None:
        super().config(**kwargs)
        if not path:
            raise ConfigError("sos: path= is required")
        self.path = path
        os.makedirs(path, exist_ok=True)
        self._data: dict[str, BinaryIO] = {}
        self._index: dict[str, BinaryIO] = {}
        self._names: dict[str, tuple[str, ...]] = {}
        self._bytes = 0

    def _handle(self, record: StoreRecord) -> str:
        schema = record.schema
        if schema not in self._data:
            base = os.path.join(self.path, schema)
            self._data[schema] = open(base + ".sos", "ab")
            self._index[schema] = open(base + ".sidx", "ab")
            self._names[schema] = record.names
            meta_path = base + ".schema.json"
            if not os.path.exists(meta_path):
                with open(meta_path, "w", encoding="utf-8") as f:
                    json.dump({"schema": schema, "metrics": list(record.names)}, f)
        elif self._names[schema] != record.names:
            raise StoreError(f"sos: schema {schema!r} layout changed")
        return schema

    def store(self, record: StoreRecord) -> None:
        schema = self._handle(record)
        df, xf = self._data[schema], self._index[schema]
        offset = df.tell()
        comp_id = record.component_ids[0] if record.component_ids else 0
        payload = _REC_HDR.pack(record.timestamp, comp_id, len(record.values))
        payload += struct.pack(f"<{len(record.values)}d", *[float(v) for v in record.values])
        df.write(payload)
        xf.write(_IDX_ENT.pack(record.timestamp, offset))
        self._bytes += len(payload) + _IDX_ENT.size

    def flush(self) -> None:
        for f in list(self._data.values()) + list(self._index.values()):
            f.flush()

    def close(self) -> None:
        self.flush()
        for f in list(self._data.values()) + list(self._index.values()):
            f.close()
        self._data.clear()
        self._index.clear()

    def bytes_written(self) -> int:
        return self._bytes


@dataclass(frozen=True)
class SosRecord:
    timestamp: float
    component_id: int
    values: tuple[float, ...]


class SosReader:
    """Reads one schema's SOS container."""

    def __init__(self, path: str, schema: str):
        base = os.path.join(path, schema)
        with open(base + ".schema.json", "r", encoding="utf-8") as f:
            meta = json.load(f)
        self.schema = schema
        self.metric_names: list[str] = meta["metrics"]
        with open(base + ".sidx", "rb") as f:
            raw = f.read()
        n = len(raw) // _IDX_ENT.size
        self._times = [0.0] * n
        self._offsets = [0] * n
        for i in range(n):
            t, off = _IDX_ENT.unpack_from(raw, i * _IDX_ENT.size)
            self._times[i] = t
            self._offsets[i] = off
        self._data_path = base + ".sos"

    def __len__(self) -> int:
        return len(self._times)

    def _read_at(self, f: BinaryIO, offset: int) -> SosRecord:
        f.seek(offset)
        hdr = f.read(_REC_HDR.size)
        ts, comp_id, card = _REC_HDR.unpack(hdr)
        vals = struct.unpack(f"<{card}d", f.read(8 * card))
        return SosRecord(ts, comp_id, vals)

    def __iter__(self) -> Iterator[SosRecord]:
        with open(self._data_path, "rb") as f:
            for off in self._offsets:
                yield self._read_at(f, off)

    def range(self, t0: float, t1: float) -> list[SosRecord]:
        """Records with t0 <= timestamp < t1, via the index.

        Note: the index is append-ordered; LDMS store time is monotone
        per aggregator, so binary search applies.
        """
        lo = bisect.bisect_left(self._times, t0)
        hi = bisect.bisect_left(self._times, t1)
        out = []
        with open(self._data_path, "rb") as f:
            for i in range(lo, hi):
                out.append(self._read_at(f, self._offsets[i]))
        return out
