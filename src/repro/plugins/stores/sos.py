"""SOS store: binary records with a time index, plus rollup levels.

A stand-in for LDMS's Scalable Object Store: per schema, a pair of
files —

* ``<schema>.sos``  — fixed-width little-endian records:
  ``f64 timestamp | u32 comp_id | u32 card | card x f64 values``;
* ``<schema>.sidx`` — ``(f64 timestamp, u64 offset)`` pairs enabling
  binary-searched time-range scans without reading the data file.

The first record freezes the schema's metric names into a JSON sidecar
``<schema>.schema.json`` so readers can label columns.  Reopening an
existing container validates incoming records against that sidecar: a
layout change across daemon restarts is rejected with a
:class:`~repro.util.errors.StoreError` instead of silently corrupting
the fixed-width record stream.

**Rollups.**  ``rollups="10,60"`` maintains pre-computed downsampling
levels on ingest: every base record is folded into a per-component
mean bucket of ``level`` seconds, and a completed bucket is appended
to a sibling container named ``<schema>.r<level>`` (same column
layout, one record per component per bucket, timestamped at the bucket
start).  Range scans over a rollup container touch ``1/level`` of the
base data — the alert-evaluator and range-scanner workloads read these
instead of the raw stream.

**Component ids.**  The record format has one ``u32`` component-id
slot, so only records whose ``component_ids`` are uniform can be
stored faithfully; heterogeneous rows are rejected loudly (counted in
``multi_component_rejected``, exported via ``ldmsd_self``) rather than
silently dropping ``component_ids[1:]``.

:class:`SosReader` provides the query side (used by the analysis
modules and the query tier): iterate records in time order, or select
a ``[t0, t1)`` time range.  The index is sorted ``(timestamp, offset)``
at load — store-arrival timestamps are *not* monotone across multiple
producers or phase-staggered samplers, so the raw append order is not
binary-searchable.
"""

from __future__ import annotations

import bisect
import json
import os
import struct
from dataclasses import dataclass
from typing import BinaryIO, Callable, Iterator, Optional

from repro.core.store import StorePlugin, StoreRecord, register_store
from repro.util.errors import ConfigError, StoreError

__all__ = ["SosStore", "SosReader", "rollup_schema"]

_REC_HDR = struct.Struct("<dII")
_IDX_ENT = struct.Struct("<dQ")


def rollup_schema(schema: str, level: int) -> str:
    """Container name of ``schema``'s ``level``-second rollup."""
    return f"{schema}.r{int(level)}"


class _Bucket:
    """One open rollup bucket: running sums for a component."""

    __slots__ = ("start", "count", "sums")

    def __init__(self, start: float, values: list[float]):
        self.start = start
        self.count = 1
        self.sums = values

    def fold(self, values: list[float]) -> None:
        self.count += 1
        sums = self.sums
        for i, v in enumerate(values):
            sums[i] += v


@register_store("sos")
class SosStore(StorePlugin):
    """Binary time-indexed store.

    Config options
    --------------
    path:
        Container directory.
    rollups:
        Comma-separated bucket widths in whole seconds (e.g.
        ``"10,60"``); each maintains a mean-per-component rollup
        container ``<schema>.r<level>``.  Empty: no rollups.
    """

    def config(self, path: str = "", rollups: str = "", **kwargs) -> None:
        super().config(**kwargs)
        if not path:
            raise ConfigError("sos: path= is required")
        self.path = path
        os.makedirs(path, exist_ok=True)
        self._data: dict[str, BinaryIO] = {}
        self._index: dict[str, BinaryIO] = {}
        self._names: dict[str, tuple[str, ...]] = {}
        self._bytes = 0
        self.rollups: tuple[int, ...] = self._parse_rollups(rollups)
        #: (base schema, level) -> comp_id -> open bucket.
        self._acc: dict[tuple[str, int], dict[int, _Bucket]] = {}
        #: Schemas whose data file already held records when this
        #: session first opened them (the query tier's hot-window cache
        #: must not claim to cover rows it never saw ingested).
        self.preexisting: set[str] = set()
        #: Per-container append counter — the query tier's cache
        #: validity version.
        self.rows_written: dict[str, int] = {}
        #: Heterogeneous-component records rejected (ldmsd_self).
        self.multi_component_rejected = 0
        self._observer: Optional[Callable[[str, float, int, tuple], None]] = None

    @staticmethod
    def _parse_rollups(spec) -> tuple[int, ...]:
        if not spec:
            return ()
        if isinstance(spec, str):
            parts = [p.strip() for p in spec.split(",") if p.strip()]
        else:
            parts = list(spec)
        levels = sorted({int(p) for p in parts})
        if any(lv <= 0 for lv in levels):
            raise ConfigError(f"sos: rollup levels must be positive: {spec!r}")
        return tuple(levels)

    def set_observer(self, fn: Optional[Callable[[str, float, int, tuple], None]]) -> None:
        """Install the per-append hook (the query engine's hot-window
        feed): ``fn(container, timestamp, comp_id, values)`` fires for
        every base and rollup record written."""
        self._observer = fn

    # -- container handling -------------------------------------------------
    def _ensure(self, schema: str, names: tuple[str, ...]) -> None:
        """Open (and on reopen, validate) ``schema``'s container."""
        if schema in self._data:
            if self._names[schema] != names:
                raise StoreError(f"sos: schema {schema!r} layout changed")
            return
        base = os.path.join(self.path, schema)
        meta_path = base + ".schema.json"
        if os.path.exists(meta_path):
            # Reopening an existing container: the on-disk sidecar is
            # the layout contract.  Appending fixed-width records of a
            # different shape would corrupt the container silently.
            with open(meta_path, "r", encoding="utf-8") as f:
                meta = json.load(f)
            disk_names = tuple(meta.get("metrics", ()))
            if disk_names != names:
                raise StoreError(
                    f"sos: schema {schema!r} layout mismatch with on-disk "
                    f"container: disk={list(disk_names)} record={list(names)}"
                )
            self.preexisting.add(schema)
        else:
            with open(meta_path, "w", encoding="utf-8") as f:
                json.dump({"schema": schema, "metrics": list(names)}, f)
        self._data[schema] = open(base + ".sos", "ab")
        self._index[schema] = open(base + ".sidx", "ab")
        self._names[schema] = names

    def _handle(self, record: StoreRecord) -> str:
        self._ensure(record.schema, record.names)
        return record.schema

    # -- write path ---------------------------------------------------------
    def _append(self, schema: str, ts: float, comp_id: int,
                values: list[float]) -> None:
        df, xf = self._data[schema], self._index[schema]
        offset = df.tell()
        payload = _REC_HDR.pack(ts, comp_id, len(values))
        payload += struct.pack(f"<{len(values)}d", *values)
        df.write(payload)
        xf.write(_IDX_ENT.pack(ts, offset))
        self._bytes += len(payload) + _IDX_ENT.size
        self.rows_written[schema] = self.rows_written.get(schema, 0) + 1
        if self._observer is not None:
            self._observer(schema, ts, comp_id, tuple(values))

    def store(self, record: StoreRecord) -> None:
        schema = self._handle(record)
        comps = record.component_ids
        comp_id = comps[0] if comps else 0
        if comps and any(c != comp_id for c in comps):
            # One u32 component slot per record: a row spanning several
            # components cannot be stored faithfully — reject loudly
            # instead of silently dropping component_ids[1:].
            self.multi_component_rejected += 1
            raise StoreError(
                f"sos: record for {record.set_name!r} spans component ids "
                f"{sorted(set(comps))}; the SOS record format holds one"
            )
        values = [float(v) for v in record.values]
        self._append(schema, record.timestamp, comp_id, values)
        for level in self.rollups:
            self._roll(schema, level, record.timestamp, comp_id, values)

    def _roll(self, schema: str, level: int, ts: float, comp_id: int,
              values: list[float]) -> None:
        start = ts // level * level
        comps = self._acc.setdefault((schema, level), {})
        bucket = comps.get(comp_id)
        if bucket is None:
            comps[comp_id] = _Bucket(start, list(values))
            return
        if bucket.start == start:
            bucket.fold(values)
            return
        # Bucket boundary crossed (or an out-of-order straggler landed
        # outside the open bucket): seal the open bucket and start a
        # fresh one.  Readers sort by timestamp, so sealing order does
        # not need to be time order.
        self._seal(schema, level, comp_id, bucket)
        comps[comp_id] = _Bucket(start, list(values))

    def _seal(self, schema: str, level: int, comp_id: int,
              bucket: _Bucket) -> None:
        target = rollup_schema(schema, level)
        if target not in self._data:
            base = os.path.join(self.path, target)
            meta_path = base + ".schema.json"
            names = self._names[schema]
            if not os.path.exists(meta_path):
                with open(meta_path, "w", encoding="utf-8") as f:
                    json.dump({"schema": target, "metrics": list(names),
                               "base": schema, "level": level,
                               "agg": "mean"}, f)
            self._data[target] = open(base + ".sos", "ab")
            self._index[target] = open(base + ".sidx", "ab")
            self._names[target] = names
        mean = [s / bucket.count for s in bucket.sums]
        self._append(target, bucket.start, comp_id, mean)

    def flush(self) -> None:
        for f in list(self._data.values()) + list(self._index.values()):
            f.flush()

    def close(self) -> None:
        # Seal every open rollup bucket (deterministic order) so the
        # tail of the stream is queryable after shutdown.
        for (schema, level) in sorted(self._acc):
            comps = self._acc[(schema, level)]
            for comp_id in sorted(comps):
                self._seal(schema, level, comp_id, comps[comp_id])
        self._acc.clear()
        self.flush()
        for f in list(self._data.values()) + list(self._index.values()):
            f.close()
        self._data.clear()
        self._index.clear()

    def bytes_written(self) -> int:
        return self._bytes


@dataclass(frozen=True)
class SosRecord:
    timestamp: float
    component_id: int
    values: tuple[float, ...]


class SosReader:
    """Reads one schema's SOS container, in timestamp order.

    The on-disk index is append-ordered, and arrival timestamps are not
    monotone across producers — the index is sorted ``(timestamp,
    offset)`` at load (stable: equal timestamps keep append order), so
    both iteration and :meth:`range` see time order.  :meth:`refresh`
    folds in entries appended since the last load, letting a serving
    tier keep one reader per container instead of re-reading the whole
    index per query.
    """

    def __init__(self, path: str, schema: str):
        base = os.path.join(path, schema)
        with open(base + ".schema.json", "r", encoding="utf-8") as f:
            meta = json.load(f)
        self.schema = schema
        self.metric_names: list[str] = meta["metrics"]
        self._data_path = base + ".sos"
        self._idx_path = base + ".sidx"
        self._times: list[float] = []
        self._offsets: list[int] = []
        self._idx_consumed = 0
        self.refresh()

    def refresh(self) -> int:
        """Load index entries appended since construction (or the last
        refresh); returns how many were added."""
        try:
            with open(self._idx_path, "rb") as f:
                f.seek(self._idx_consumed)
                raw = f.read()
        except OSError:
            return 0
        n = len(raw) // _IDX_ENT.size
        if n == 0:
            return 0
        tail = [_IDX_ENT.unpack_from(raw, i * _IDX_ENT.size) for i in range(n)]
        self._idx_consumed += n * _IDX_ENT.size
        if self._times and tail[0][0] >= self._times[-1] and _sorted_pairs(tail):
            pairs = tail
        else:
            pairs = sorted(list(zip(self._times, self._offsets)) + tail)
            self._times = []
            self._offsets = []
        self._times.extend(t for t, _ in pairs)
        self._offsets.extend(off for _, off in pairs)
        return n

    def __len__(self) -> int:
        return len(self._times)

    def _read_at(self, f: BinaryIO, offset: int) -> SosRecord:
        f.seek(offset)
        hdr = f.read(_REC_HDR.size)
        ts, comp_id, card = _REC_HDR.unpack(hdr)
        vals = struct.unpack(f"<{card}d", f.read(8 * card))
        return SosRecord(ts, comp_id, vals)

    def __iter__(self) -> Iterator[SosRecord]:
        with open(self._data_path, "rb") as f:
            for off in self._offsets:
                yield self._read_at(f, off)

    def range(self, t0: float, t1: float) -> list[SosRecord]:
        """Records with t0 <= timestamp < t1, via the sorted index."""
        lo = bisect.bisect_left(self._times, t0)
        hi = bisect.bisect_left(self._times, t1)
        out = []
        with open(self._data_path, "rb") as f:
            for i in range(lo, hi):
                out.append(self._read_at(f, self._offsets[i]))
        return out


def _sorted_pairs(pairs: list[tuple[float, int]]) -> bool:
    return all(pairs[i] <= pairs[i + 1] for i in range(len(pairs) - 1))
