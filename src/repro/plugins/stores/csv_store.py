"""CSV store: one file per metric set schema.

Row format mirrors LDMS's store_csv::

    Time,Producer,CompId,<metric1>,<metric2>,...

``CompId`` is the component id of the first metric (the per-node id in
all built-in samplers).  An optional separate ``.HEADER`` file carries
the column names (paper §IV-C: "optionally write header to separate
file"); otherwise the header is the first row of the data file.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, TextIO

from repro.core.metric import MetricType
from repro.core.store import StorePlugin, StoreRecord, register_store
from repro.util.errors import ConfigError, StoreError

__all__ = ["CsvStore"]

# "%.6g" % v renders identically to f"{v:.6g}" (same C 'g' conversion);
# binding __mod__ once gives a per-column callable with no per-value
# type dispatch.
_FLOAT_FMT: Callable[[float], str] = "%.6g".__mod__
_FLOAT_TYPES = (MetricType.F32, MetricType.F64)


def _compile_formatters(mtypes: tuple[MetricType, ...]) -> tuple[Callable, ...]:
    """One formatter per column, chosen once from the schema's types."""
    return tuple(_FLOAT_FMT if t in _FLOAT_TYPES else str for t in mtypes)


@register_store("store_csv")
class CsvStore(StorePlugin):
    """Buffered CSV writer.

    Config options
    --------------
    path:
        Container directory; one ``<schema>.csv`` per schema inside.
    altheader:
        Truthy to write the header to ``<schema>.HEADER`` instead of
        the data file.
    buffer_lines:
        Lines buffered before an OS write (default 64).
    roll_bytes:
        When positive, roll the data file once it exceeds this size:
        the current file is renamed ``<schema>.csv.<n>`` and a fresh
        file (with header, unless altheader) is started.  Daily volumes
        of tens of GB (§IV-D) make rollover operationally necessary.
    """

    def config(self, path: str = "", altheader=False, buffer_lines=64,
               roll_bytes=0, **kwargs) -> None:
        super().config(**kwargs)
        if not path:
            raise ConfigError("store_csv: path= is required")
        self.path = path
        if isinstance(altheader, str):
            altheader = altheader.lower() in ("1", "true", "yes")
        self.altheader = bool(altheader)
        self.buffer_lines = int(buffer_lines)
        self.roll_bytes = int(roll_bytes)
        os.makedirs(path, exist_ok=True)
        self._files: dict[str, TextIO] = {}
        self._headers: dict[str, tuple[str, ...]] = {}
        self._buffers: dict[str, list[str]] = {}
        self._formatters: dict[str, Optional[tuple[Callable, ...]]] = {}
        self._roll_counts: dict[str, int] = {}
        self._bytes = 0

    def _handle(self, record: StoreRecord) -> str:
        schema = record.schema
        if schema not in self._files:
            fpath = os.path.join(self.path, f"{schema}.csv")
            self._files[schema] = open(fpath, "a", encoding="utf-8")
            self._headers[schema] = record.names
            self._buffers[schema] = []
            self._formatters[schema] = (
                _compile_formatters(record.mtypes)
                if record.mtypes is not None else None
            )
            header = "Time,Producer,CompId," + ",".join(record.names) + "\n"
            if self.altheader:
                with open(os.path.join(self.path, f"{schema}.HEADER"), "w",
                          encoding="utf-8") as hf:
                    hf.write(header)
            elif self._files[schema].tell() == 0:
                self._buffers[schema].append(header)
        elif self._headers[schema] != record.names:
            raise StoreError(
                f"store_csv: schema {schema!r} metric names changed; "
                "configure one store instance per distinct set layout"
            )
        return schema

    def store(self, record: StoreRecord) -> None:
        schema = self._handle(record)
        comp_id = record.component_ids[0] if record.component_ids else 0
        fmts = self._formatters[schema] if record.mtypes is not None else None
        if fmts is not None:
            body = ",".join([f(v) for f, v in zip(fmts, record.values)])
        else:
            body = ",".join([self._fmt(v) for v in record.values])
        row = f"{record.timestamp:.6f},{record.producer},{comp_id},{body}\n"
        buf = self._buffers[schema]
        buf.append(row)
        if len(buf) >= self.buffer_lines:
            self._drain(schema)

    def store_many(self, records: list[StoreRecord]) -> None:
        """Vectorized batch write: format every row with the compiled
        per-schema formatters, then run the buffer-drain check once per
        schema instead of once per row.  Emitted bytes are identical to
        per-record ``store`` calls in the same order.
        """
        touched = set()
        buffers = self._buffers
        formatters = self._formatters
        for record in records:
            schema = self._handle(record)
            comp_id = record.component_ids[0] if record.component_ids else 0
            fmts = formatters[schema] if record.mtypes is not None else None
            if fmts is not None:
                body = ",".join([f(v) for f, v in zip(fmts, record.values)])
            else:
                body = ",".join([self._fmt(v) for v in record.values])
            buffers[schema].append(
                f"{record.timestamp:.6f},{record.producer},{comp_id},{body}\n"
            )
            touched.add(schema)
        # sorted: drain order must not depend on PYTHONHASHSEED, or the
        # flush sequence (and thus file write order) varies across runs
        for schema in sorted(touched):
            if len(buffers[schema]) >= self.buffer_lines:
                self._drain(schema)

    @staticmethod
    def _fmt(v: float | int) -> str:
        return f"{v:.6g}" if isinstance(v, float) else str(v)

    def _drain(self, schema: str) -> None:
        buf = self._buffers[schema]
        if buf:
            text = "".join(buf)
            self._files[schema].write(text)
            self._bytes += len(text)
            buf.clear()
            if self.roll_bytes > 0 and self._files[schema].tell() >= self.roll_bytes:
                self._roll(schema)

    def _roll(self, schema: str) -> None:
        """Rotate <schema>.csv to <schema>.csv.<n> and start fresh."""
        self._files[schema].close()
        n = self._roll_counts.get(schema, 0) + 1
        self._roll_counts[schema] = n
        fpath = os.path.join(self.path, f"{schema}.csv")
        os.replace(fpath, f"{fpath}.{n}")
        self._files[schema] = open(fpath, "a", encoding="utf-8")
        if not self.altheader:
            header = ("Time,Producer,CompId,"
                      + ",".join(self._headers[schema]) + "\n")
            self._files[schema].write(header)

    def flush(self) -> None:
        for schema in list(self._files):
            self._drain(schema)
            self._files[schema].flush()

    def close(self) -> None:
        self.flush()
        for f in self._files.values():
            f.close()
        self._files.clear()

    def bytes_written(self) -> int:
        return self._bytes
