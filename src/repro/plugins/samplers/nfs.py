"""NFS client sampler: /proc/net/rpc/nfs (part of the Chama set, §IV-G)."""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler
from repro.plugins.samplers.parsers import parse_nfs

__all__ = ["NfsSampler"]


@register_sampler("nfs")
class NfsSampler(SamplerPlugin):
    """Samples RPC call totals and NFSv3 op counts as U64 metrics."""

    METRICS = ("rpc_calls", "rpc_retrans", "nfs3_ops")

    def config(self, instance: str, component_id: int = 0,
               path: str = "/proc/net/rpc/nfs", **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        self.path = path
        self.set = self.create_set(
            instance, "nfs", [(m, MetricType.U64) for m in self.METRICS]
        )

    def do_sample(self, now: float) -> None:
        data = parse_nfs(self.daemon.fs.read(self.path))
        get = data.get
        # METRICS is in metric-index order: one compiled whole-row write.
        self.set.set_values([get(m, 0) for m in self.METRICS])
