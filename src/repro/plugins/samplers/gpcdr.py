"""Cray HSN sampler: gpcdr metrics plus derived utilization metrics.

Collects per-direction Gemini link metrics from the gpcdr /sys file and
derives, over each sample period (§IV-F):

* ``percent_stalled_<d>`` — percent of wall time the link spent in
  output credit stalls (Fig. 9's quantity);
* ``percent_bw_<d>`` — percent of the link's theoretical maximum
  bandwidth used, based on the link media type (Fig. 10's quantity).

Derivation needs the previous raw values, which the plugin keeps as
private state — the metric set itself still carries no history.
"""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler
from repro.nodefs.gpcdr import GEMINI_DIRECTIONS, GPCDR_PATH
from repro.plugins.samplers.parsers import parse_gpcdr

__all__ = ["GpcdrSampler"]

RAW = ("traffic", "packets", "stalled", "linkstatus")
DERIVED = ("percent_stalled", "percent_bw", "avg_packet_size")


@register_sampler("gpcdr")
class GpcdrSampler(SamplerPlugin):
    """Samples raw HSN counters (U64) and derived percents (F64)."""

    def config(self, instance: str, component_id: int = 0,
               path: str = GPCDR_PATH, **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        self.path = path
        metrics: list[tuple[str, MetricType]] = []
        for d in GEMINI_DIRECTIONS:
            metrics.extend((f"{raw}_{d}", MetricType.U64) for raw in RAW)
            metrics.extend((f"{der}_{d}", MetricType.F64) for der in DERIVED)
        self.set = self.create_set(instance, "gpcdr", metrics)
        self._prev: dict[str, float] | None = None
        self._prev_ts: float = 0.0

    def do_sample(self, now: float) -> None:
        data = parse_gpcdr(self.daemon.fs.read(self.path))
        ts = float(data.get("timestamp", now))
        prev = self._prev
        dt = ts - self._prev_ts if prev is not None else 0.0
        get = data.get
        # Values accumulate in metric creation order (per direction: the
        # raw U64s then the derived F64s) for one whole-row write.
        vals: list[float | int] = []
        for d in GEMINI_DIRECTIONS:
            for raw in RAW:
                vals.append(int(get(f"{raw}_{d}", 0)))
            if prev is not None and dt > 0:
                d_traffic = get(f"traffic_{d}", 0) - prev.get(f"traffic_{d}", 0)
                d_packets = get(f"packets_{d}", 0) - prev.get(f"packets_{d}", 0)
                d_stall_ns = get(f"stalled_{d}", 0) - prev.get(f"stalled_{d}", 0)
                speed = max(float(get(f"linkspeed_{d}", 0)), 1.0)
                pct_stall = min(100.0 * (d_stall_ns / 1e9) / dt, 100.0)
                pct_bw = min(100.0 * (d_traffic / dt) / speed, 100.0)
                avg_pkt = d_traffic / d_packets if d_packets > 0 else 0.0
            else:
                pct_stall = pct_bw = avg_pkt = 0.0
            vals.append(max(pct_stall, 0.0))
            vals.append(max(pct_bw, 0.0))
            vals.append(max(avg_pkt, 0.0))
        self.set.set_values(vals)
        self._prev = {k: float(v) for k, v in data.items()}
        self._prev_ts = ts
