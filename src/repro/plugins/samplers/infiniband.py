"""Infiniband traffic sampler: /sys/class/infiniband/*/ports/*/counters/*.

Note: as on real hardware, ``port_rcv_data``/``port_xmit_data`` count
4-byte words; consumers multiply by 4 for bytes.
"""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler
from repro.plugins.samplers.parsers import parse_counter_file
from repro.util.errors import ConfigError

__all__ = ["InfinibandSampler"]

COUNTERS = (
    "port_rcv_data",
    "port_xmit_data",
    "port_rcv_packets",
    "port_xmit_packets",
)

IB_ROOT = "/sys/class/infiniband"


@register_sampler("infiniband")
class InfinibandSampler(SamplerPlugin):
    """Per-device port-1 counters; metric names ``port_rcv_data#mlx4_0``.

    Config options
    --------------
    devices:
        Comma string of HCA names or ``"auto"`` (default) to discover.
    port:
        Port number (default 1).
    root:
        sysfs infiniband directory.
    """

    def config(self, instance: str, component_id: int = 0, devices="auto",
               port: int = 1, root: str = IB_ROOT, **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        self.root = root
        self.port = int(port)
        if isinstance(devices, str) and devices != "auto":
            devices = tuple(d for d in devices.split(",") if d)
        if devices == "auto":
            try:
                devices = tuple(self.daemon.fs.listdir(root))
            except FileNotFoundError:
                raise ConfigError(f"infiniband: no {root}") from None
        if not devices:
            raise ConfigError("infiniband: no devices found")
        self.devices = tuple(devices)
        metrics = [
            (f"{ctr}#{dev}", MetricType.U64)
            for dev in self.devices
            for ctr in COUNTERS
        ]
        self.set = self.create_set(instance, "infiniband", metrics)
        # Counter-file paths in metric-index order, resolved once.
        self._paths = tuple(
            f"{self.root}/{dev}/ports/{self.port}/counters/{ctr}"
            for dev in self.devices
            for ctr in COUNTERS
        )

    def do_sample(self, now: float) -> None:
        read = self.daemon.fs.read
        vals = []
        for path in self._paths:
            try:
                vals.append(parse_counter_file(read(path)))
            except (FileNotFoundError, ValueError):
                vals.append(0)
        self.set.set_values(vals)
