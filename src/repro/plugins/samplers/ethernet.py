"""Ethernet traffic sampler: /sys/class/net/<iface>/statistics/*."""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler
from repro.plugins.samplers.parsers import parse_counter_file
from repro.util.errors import ConfigError

__all__ = ["EthernetSampler"]

COUNTERS = (
    "rx_bytes",
    "tx_bytes",
    "rx_packets",
    "tx_packets",
    "rx_errors",
    "tx_errors",
    "rx_dropped",
    "tx_dropped",
)

NET_ROOT = "/sys/class/net"


@register_sampler("ethernet")
class EthernetSampler(SamplerPlugin):
    """Per-interface traffic counters; metric names ``rx_bytes#eth0``.

    Config options
    --------------
    ifaces:
        Comma string of interface names, or ``"auto"`` (default) to
        discover every interface with a statistics directory except
        ``lo``.
    root:
        sysfs net directory (default ``/sys/class/net``).
    """

    def config(self, instance: str, component_id: int = 0, ifaces="auto",
               root: str = NET_ROOT, **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        self.root = root
        if isinstance(ifaces, str) and ifaces != "auto":
            ifaces = tuple(i for i in ifaces.split(",") if i)
        if ifaces == "auto":
            try:
                found = self.daemon.fs.listdir(root)
            except FileNotFoundError:
                raise ConfigError(f"ethernet: no {root}") from None
            ifaces = tuple(
                i for i in found
                if i != "lo" and self.daemon.fs.exists(f"{root}/{i}/statistics/rx_bytes")
            )
        if not ifaces:
            raise ConfigError("ethernet: no interfaces found")
        self.ifaces = tuple(ifaces)
        metrics = [
            (f"{ctr}#{iface}", MetricType.U64)
            for iface in self.ifaces
            for ctr in COUNTERS
        ]
        self.set = self.create_set(instance, "ethernet", metrics)

    def do_sample(self, now: float) -> None:
        # Counters accumulate in metric-creation order (iface-major) and
        # land with one bulk set_values() write.
        fs = self.daemon.fs
        vals: list[int] = []
        for iface in self.ifaces:
            for ctr in COUNTERS:
                path = f"{self.root}/{iface}/statistics/{ctr}"
                try:
                    vals.append(parse_counter_file(fs.read(path)))
                except (FileNotFoundError, ValueError):
                    vals.append(0)
        self.set.set_values(vals)
