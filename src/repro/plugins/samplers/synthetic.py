"""Synthetic sampler: configurable metric count and value pattern.

Used by the footprint/fan-in benchmarks, by scale tests, and as a
template for user-written plugins.  Patterns:

* ``counter`` — each metric increments by its index+1 per sample;
* ``constant`` — metric i always holds i;
* ``random`` — uniform random u64 values (seeded).
"""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler
from repro.util.errors import ConfigError
from repro.util.rngtools import spawn_rng

__all__ = ["SyntheticSampler"]

#: Shared metric-name tuples keyed by count: a fan-in sweep configures
#: thousands of identical instances, and the name strings dominate its
#: per-instance config cost.
_NAMES_CACHE: dict[int, tuple[str, ...]] = {}


@register_sampler("synthetic")
class SyntheticSampler(SamplerPlugin):
    """N generated metrics in one set (schema ``synthetic``).

    Config options
    --------------
    num_metrics:
        How many metrics (default 100).
    pattern:
        ``counter`` (default) / ``constant`` / ``random``.
    value_type:
        Metric type name (default ``u64``).
    seed:
        RNG seed for the ``random`` pattern.
    """

    def config(self, instance: str, component_id: int = 0, num_metrics=100,
               pattern: str = "counter", value_type: str = "u64",
               seed: int = 0, **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        n = int(num_metrics)
        if n < 1:
            raise ConfigError("synthetic: num_metrics must be >= 1")
        if pattern not in ("counter", "constant", "random"):
            raise ConfigError(f"synthetic: unknown pattern {pattern!r}")
        self.pattern = pattern
        self.mtype = MetricType.parse(value_type)
        # Only the "random" pattern draws; spinning up a numpy Generator
        # costs tens of µs, noticeable when a fan-in sweep configures
        # thousands of counter-pattern instances.
        self.rng = (spawn_rng(int(seed), "synthetic", instance)
                    if pattern == "random" else None)
        names = _NAMES_CACHE.get(n)
        if names is None:
            width = len(str(n - 1))
            names = _NAMES_CACHE[n] = tuple(
                f"metric_{i:0{width}d}" for i in range(n)
            )
        self.names = names
        self.set = self.create_set(
            instance, "synthetic", [(m, self.mtype) for m in self.names]
        )
        self._ticks = 0
        self._cohort_base = None

    def do_sample(self, now: float) -> None:
        self._ticks += 1
        n = len(self.names)
        if self.pattern == "counter":
            vals = [self._ticks * (i + 1) for i in range(n)]
        elif self.pattern == "constant":
            vals = list(range(n))
        else:
            vals = [int(v) for v in self.rng.integers(0, 2**32, size=n)]
        self.set.set_values(vals)

    # -- columnar cohort protocol (REPRO_ARENA) ----------------------------
    def cohort_key(self):
        # Deterministic patterns produce the same row for every instance
        # at the same tick; "random" draws per-instance and must stay on
        # the scalar path.
        if self.pattern == "random":
            return None
        return ("synthetic", self.pattern, len(self.names), self.mtype)

    def cohort_advance(self) -> int:
        self._ticks += 1
        return self._ticks

    def cohort_row(self, ticks: int, dtype):
        import numpy as np

        base = self._cohort_base
        if base is None or base.dtype != dtype:
            base = self._cohort_base = np.arange(1, len(self.names) + 1,
                                                 dtype=dtype)
        if self.pattern == "counter":
            return base * ticks
        return base - 1  # constant: metric i always holds i
