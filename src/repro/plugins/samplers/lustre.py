"""Lustre client sampler: /proc/fs/lustre/llite/*/stats.

Collects the §II "Shared File System information (e.g. Lustre): Opens,
Closes, Reads, Writes".  Metric names are suffixed with the stats
source exactly as in the paper's example metric set (§IV-B)::

    open#stats.snx11024
    close#stats.snx11024
    read_bytes#stats.snx11024
    ...
"""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler
from repro.plugins.samplers.parsers import parse_lustre_stats
from repro.util.errors import ConfigError

__all__ = ["LustreSampler", "LUSTRE_EVENTS"]

LUSTRE_EVENTS = (
    "dirty_pages_hits",
    "dirty_pages_misses",
    "read_bytes",
    "write_bytes",
    "open",
    "close",
)

LLITE_ROOT = "/proc/fs/lustre/llite"


@register_sampler("lustre")
class LustreSampler(SamplerPlugin):
    """One metric set covering every configured Lustre mount.

    Config options
    --------------
    mounts:
        Comma string of filesystem names (``snx11024``) or ``"auto"``
        (default) to discover mounts by listing the llite directory.
    events:
        Event counters to collect per mount; default the paper's six.
    root:
        llite directory (default ``/proc/fs/lustre/llite``).
    """

    def config(self, instance: str, component_id: int = 0, mounts="auto",
               events=None, root: str = LLITE_ROOT, **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        self.root = root
        if isinstance(events, str):
            events = tuple(e for e in events.split(",") if e)
        self.events = tuple(events) if events else LUSTRE_EVENTS
        if isinstance(mounts, str) and mounts != "auto":
            mounts = tuple(m for m in mounts.split(",") if m)
        if mounts == "auto":
            try:
                entries = self.daemon.fs.listdir(root)
            except FileNotFoundError:
                raise ConfigError(f"lustre: no llite directory at {root}") from None
            # Directory entries look like <fsname>-<instance-id>.
            self._dirs = {e.rsplit("-", 1)[0]: e for e in entries}
        else:
            try:
                entries = self.daemon.fs.listdir(root)
            except FileNotFoundError:
                entries = []
            by_fs = {e.rsplit("-", 1)[0]: e for e in entries}
            missing = [m for m in mounts if m not in by_fs]
            if missing:
                raise ConfigError(f"lustre: mounts not present: {missing}")
            self._dirs = {m: by_fs[m] for m in mounts}
        if not self._dirs:
            raise ConfigError("lustre: no mounts found")
        self._mounts = tuple(sorted(self._dirs))
        metrics = [
            (f"{event}#stats.{fsname}", MetricType.U64)
            for fsname in self._mounts
            for event in self.events
        ]
        self.set = self.create_set(instance, "lustre", metrics)
        # Stats-file paths in mount (= metric-index) order, resolved once.
        self._stat_paths = tuple(
            f"{self.root}/{self._dirs[m]}/stats" for m in self._mounts
        )

    def do_sample(self, now: float) -> None:
        read = self.daemon.fs.read
        vals: list[int] = []
        for path in self._stat_paths:
            stats = parse_lustre_stats(read(path))
            get = stats.get
            vals.extend(get(event, 0) for event in self.events)
        self.set.set_values(vals)
