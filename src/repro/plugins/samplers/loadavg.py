"""Load-average sampler: /proc/loadavg (the Blue Waters set includes
"cpu load averages", §IV-F)."""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler
from repro.plugins.samplers.parsers import parse_loadavg

__all__ = ["LoadavgSampler"]


@register_sampler("loadavg")
class LoadavgSampler(SamplerPlugin):
    """Samples load1/load5/load15 (F64) and process counts (U64)."""

    def config(self, instance: str, component_id: int = 0,
               path: str = "/proc/loadavg", **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        self.path = path
        self.set = self.create_set(
            instance,
            "loadavg",
            [
                ("load1", MetricType.F64),
                ("load5", MetricType.F64),
                ("load15", MetricType.F64),
                ("runnable", MetricType.U64),
                ("total_procs", MetricType.U64),
            ],
        )

    def do_sample(self, now: float) -> None:
        # Parser yields values in metric-creation order; one bulk write.
        data = parse_loadavg(self.daemon.fs.read(self.path))
        self.set.set_values(tuple(data.values()))
