"""LNET traffic sampler: /proc/sys/lnet/stats (part of the Blue Waters
custom set, §IV-F)."""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler
from repro.plugins.samplers.parsers import LNET_FIELDS, parse_lnet_stats

__all__ = ["LnetSampler"]


@register_sampler("lnet")
class LnetSampler(SamplerPlugin):
    """Samples the 11 LNET counters as U64 metrics."""

    def config(self, instance: str, component_id: int = 0,
               path: str = "/proc/sys/lnet/stats", **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        self.path = path
        self.set = self.create_set(
            instance, "lnet", [(m, MetricType.U64) for m in LNET_FIELDS]
        )

    def do_sample(self, now: float) -> None:
        data = parse_lnet_stats(self.daemon.fs.read(self.path))
        get = data.get
        # LNET_FIELDS is in metric-index order: one compiled whole-row write.
        self.set.set_values([get(m, 0) for m in LNET_FIELDS])
