"""Sampler plugins.

Importing this package registers every built-in sampler in
:data:`repro.core.sampler.sampler_registry`:

========== ============================================= =================
name       source                                        schema
========== ============================================= =================
meminfo    /proc/meminfo                                 ``meminfo``
procstat   /proc/stat (CPU utilization)                  ``procstat``
loadavg    /proc/loadavg                                 ``loadavg``
lustre     /proc/fs/lustre/llite/*/stats                 ``lustre``
nfs        /proc/net/rpc/nfs                             ``nfs``
ethernet   /sys/class/net/*/statistics/*                 ``ethernet``
infiniband /sys/class/infiniband/*/ports/*/counters/*    ``infiniband``
lnet       /proc/sys/lnet/stats                          ``lnet``
gpcdr      Cray gpcdr HSN metrics (+ derived pcts)       ``gpcdr``
bw_custom  Blue Waters combined node set (§IV-F)         ``bw_custom``
jobid      resource-manager job id on the node           ``jobid``
synthetic  configurable generated metrics (benchmarks)   ``synthetic``
ldmsd_self the daemon's own pipeline telemetry           ``ldmsd_self``
========== ============================================= =================
"""

from repro.plugins.samplers.meminfo import MeminfoSampler
from repro.plugins.samplers.procstat import ProcstatSampler
from repro.plugins.samplers.loadavg import LoadavgSampler
from repro.plugins.samplers.lustre import LustreSampler
from repro.plugins.samplers.nfs import NfsSampler
from repro.plugins.samplers.ethernet import EthernetSampler
from repro.plugins.samplers.infiniband import InfinibandSampler
from repro.plugins.samplers.lnet import LnetSampler
from repro.plugins.samplers.gpcdr import GpcdrSampler
from repro.plugins.samplers.bw_custom import BlueWatersSampler
from repro.plugins.samplers.jobid import JobidSampler
from repro.plugins.samplers.synthetic import SyntheticSampler
from repro.plugins.samplers.ldmsd_self import LdmsdSelfSampler

__all__ = [
    "MeminfoSampler",
    "ProcstatSampler",
    "LoadavgSampler",
    "LustreSampler",
    "NfsSampler",
    "EthernetSampler",
    "InfinibandSampler",
    "LnetSampler",
    "GpcdrSampler",
    "BlueWatersSampler",
    "JobidSampler",
    "SyntheticSampler",
    "LdmsdSelfSampler",
]
