"""Memory sampler: /proc/meminfo.

Collects the memory-related information the paper motivates in §II
("Memory related information: Current Free, Active").
"""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler
from repro.plugins.samplers.parsers import parse_meminfo
from repro.util.errors import ConfigError

__all__ = ["MeminfoSampler"]


@register_sampler("meminfo")
class MeminfoSampler(SamplerPlugin):
    """Samples selected /proc/meminfo rows (kB values) as U64 metrics.

    Config options
    --------------
    metrics:
        Comma string or sequence of meminfo keys; defaults to the rows
        used in the paper's deployments.
    path:
        File to read (default ``/proc/meminfo``).
    """

    DEFAULT_METRICS = (
        "MemTotal",
        "MemFree",
        "Buffers",
        "Cached",
        "Active",
        "Inactive",
        "Dirty",
    )

    def config(self, instance: str, component_id: int = 0, metrics=None,
               path: str = "/proc/meminfo", **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        self.path = path
        if isinstance(metrics, str):
            metrics = tuple(m for m in metrics.split(",") if m)
        if metrics is not None and not tuple(metrics):
            raise ConfigError("meminfo: empty metric list")
        self.metrics = tuple(metrics) if metrics else self.DEFAULT_METRICS
        self.set = self.create_set(
            instance, "meminfo", [(m, MetricType.U64) for m in self.metrics]
        )
        # Layout is frozen now: self.metrics is already in metric-index
        # order, so sampling can use the compiled whole-row setter.

    def do_sample(self, now: float) -> None:
        data = parse_meminfo(self.daemon.fs.read(self.path))
        get = data.get
        self.set.set_values([get(m, 0) for m in self.metrics])
