"""The Blue Waters combined node sampler.

Paper §IV-F: "On Blue Waters, a sampler collects one custom dataset
whose data comes from a variety of independent sources, including HSN
information from the gpcdr module, lustre information, LNET traffic
counters, network counters, and cpu load averages.  In addition we
derive information over the sample period, including percent of time
stalled and percent bandwidth used."

This plugin assembles one metric set (schema ``bw_custom``) from all of
those sources — 194 metrics in the production deployment, a number this
default configuration reproduces by construction:

* gpcdr: 6 directions x (4 raw + 3 derived)               = 42
* lustre: 27 llite filesystems x 4 events                 = 108
* lnet: 11 counters                                       = 11
* nic (Gemini NIC totals): 8 counters                     = 8
* loadavg: 5                                              = 5
* cpu (aggregate /proc/stat row + ctxt/processes):        = 10
* energy/power placeholders (Cray RUR-style):             = 10
                                                    total = 194
"""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler
from repro.nodefs.gpcdr import GEMINI_DIRECTIONS, GPCDR_PATH
from repro.plugins.samplers.gpcdr import DERIVED, RAW
from repro.plugins.samplers.parsers import (
    CPU_FIELDS,
    LNET_FIELDS,
    parse_gpcdr,
    parse_loadavg,
    parse_lnet_stats,
    parse_lustre_stats,
    parse_proc_stat,
)

__all__ = ["BlueWatersSampler"]

BW_LUSTRE_EVENTS = ("open", "close", "read_bytes", "write_bytes")
NIC_COUNTERS = (
    "totaloutput_optA", "totalinput", "fmaout", "bteout_optA",
    "bteout_optB", "totaloutput_optB", "outputresp", "inputresp",
)
RUR_COUNTERS = (
    "energy_j", "power_w", "power_cap_w", "freshness",
    "accel_energy_j", "accel_power_w", "cpu_temp_c", "mem_temp_c",
    "startup", "version",
)


@register_sampler("bw_custom")
class BlueWatersSampler(SamplerPlugin):
    """One combined metric set per Blue Waters node.

    Config options
    --------------
    lustre_mounts:
        Comma string of llite filesystem names (default ``auto``).
    """

    def config(self, instance: str, component_id: int = 0,
               lustre_mounts="auto", gpcdr_path: str = GPCDR_PATH,
               llite_root: str = "/proc/fs/lustre/llite", **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        self.gpcdr_path = gpcdr_path
        self.llite_root = llite_root
        if isinstance(lustre_mounts, str) and lustre_mounts != "auto":
            lustre_mounts = tuple(m for m in lustre_mounts.split(",") if m)
        if lustre_mounts == "auto":
            try:
                entries = self.daemon.fs.listdir(llite_root)
            except FileNotFoundError:
                entries = []
            self._llite = {e.rsplit("-", 1)[0]: e for e in entries}
        else:
            entries = self.daemon.fs.listdir(llite_root)
            by_fs = {e.rsplit("-", 1)[0]: e for e in entries}
            self._llite = {m: by_fs[m] for m in lustre_mounts}

        metrics: list[tuple[str, MetricType]] = []
        for d in GEMINI_DIRECTIONS:
            metrics.extend((f"{raw}_{d}", MetricType.U64) for raw in RAW)
            metrics.extend((f"{der}_{d}", MetricType.F64) for der in DERIVED)
        for fs in sorted(self._llite):
            metrics.extend(
                (f"{ev}#stats.{fs}", MetricType.U64) for ev in BW_LUSTRE_EVENTS
            )
        metrics.extend((m, MetricType.U64) for m in LNET_FIELDS)
        metrics.extend((f"nic_{c}", MetricType.U64) for c in NIC_COUNTERS)
        metrics.extend(
            [("load1", MetricType.F64), ("load5", MetricType.F64),
             ("load15", MetricType.F64), ("runnable", MetricType.U64),
             ("total_procs", MetricType.U64)]
        )
        metrics.extend((f"cpu_{f}", MetricType.U64) for f in CPU_FIELDS)
        metrics.extend([("ctxt", MetricType.U64), ("processes", MetricType.U64)])
        metrics.extend((f"rur_{c}", MetricType.U64) for c in RUR_COUNTERS)
        self.set = self.create_set(instance, "bw_custom", metrics)
        self._prev: dict[str, float] | None = None
        self._prev_ts = 0.0

    def do_sample(self, now: float) -> None:
        # One whole-row write: values accumulate in metric-creation
        # order and land with a single set_values() pack + DGN bump.
        fs = self.daemon.fs
        vals: list[float | int] = []
        # HSN (+ derived)
        data = parse_gpcdr(fs.read(self.gpcdr_path))
        ts = float(data.get("timestamp", now))
        dt = ts - self._prev_ts if self._prev is not None else 0.0
        for d in GEMINI_DIRECTIONS:
            for raw in RAW:
                vals.append(int(data.get(f"{raw}_{d}", 0)))
            if self._prev is not None and dt > 0:
                d_traffic = data.get(f"traffic_{d}", 0) - self._prev.get(f"traffic_{d}", 0)
                d_packets = data.get(f"packets_{d}", 0) - self._prev.get(f"packets_{d}", 0)
                d_stall_ns = data.get(f"stalled_{d}", 0) - self._prev.get(f"stalled_{d}", 0)
                speed = max(float(data.get(f"linkspeed_{d}", 0)), 1.0)
                pct_stall = min(100.0 * (d_stall_ns / 1e9) / dt, 100.0)
                pct_bw = min(100.0 * (d_traffic / dt) / speed, 100.0)
                avg_pkt = d_traffic / d_packets if d_packets > 0 else 0.0
            else:
                pct_stall = pct_bw = avg_pkt = 0.0
            vals.append(max(pct_stall, 0.0))
            vals.append(max(pct_bw, 0.0))
            vals.append(max(avg_pkt, 0.0))
        self._prev = {k: float(v) for k, v in data.items()}
        self._prev_ts = ts
        # Lustre
        for fsname in sorted(self._llite):
            stats = parse_lustre_stats(
                fs.read(f"{self.llite_root}/{self._llite[fsname]}/stats")
            )
            vals.extend(stats.get(ev, 0) for ev in BW_LUSTRE_EVENTS)
        # LNET
        lnet = parse_lnet_stats(fs.read("/proc/sys/lnet/stats"))
        vals.extend(lnet.get(m, 0) for m in LNET_FIELDS)
        # NIC totals: derive from gpcdr traffic totals (the real sampler
        # reads separate Gemini NIC performance counters).
        total_out = int(sum(data.get(f"traffic_{d}", 0) for d in GEMINI_DIRECTIONS))
        vals.extend(total_out >> i for i in range(len(NIC_COUNTERS)))
        # Load averages (parser yields load1/load5/load15/runnable/total_procs
        # in metric order)
        vals.extend(parse_loadavg(fs.read("/proc/loadavg")).values())
        # CPU aggregate
        stat = parse_proc_stat(fs.read("/proc/stat"))
        vals.extend(stat.get(f"cpu_{f}", 0) for f in CPU_FIELDS)
        vals.append(stat.get("ctxt", 0))
        vals.append(stat.get("processes", 0))
        # RUR-style placeholders (no power instrumentation in the model).
        vals.extend(0 for _ in RUR_COUNTERS)
        self.set.set_values(vals)
