"""``ldmsd_self``: export the daemon's own telemetry as a metric set.

Real LDMS daemons publish their self-metrics the same way they publish
``meminfo`` — as an ordinary metric set — so an aggregator pulls a
sampler daemon's health over the normal transport, validates it with
the normal MGN/DGN rules, and persists it through the normal store
path.  The schema (59 U64 metrics: operational counters plus
p50/p95/p99/max latency quantiles in microseconds for every pipeline
stage) is defined once in :mod:`repro.obs.selfmetrics`.

The set is sampled like any other plugin — ``begin_transaction`` /
bulk ``set_values`` / ``end_transaction`` — so a fetch landing inside
the snapshot window is discarded as torn, exactly as for data sets.
"""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler
from repro.obs.selfmetrics import SELF_METRIC_NAMES, SELF_SCHEMA, collect

__all__ = ["LdmsdSelfSampler"]


@register_sampler("ldmsd_self")
class LdmsdSelfSampler(SamplerPlugin):
    """The daemon's health as a first-class metric set.

    Config options: only the standard ``instance=`` /
    ``component_id=``; the schema is fixed.
    """

    def config(self, instance: str, component_id: int = 0, **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        self.set = self.create_set(
            instance, SELF_SCHEMA, [(m, MetricType.U64) for m in SELF_METRIC_NAMES]
        )

    def do_sample(self, now: float) -> None:
        # One registry snapshot -> one compiled whole-row pack.
        self.set.set_values(collect(self.daemon))
