"""Parsers for the /proc and /sys text formats the samplers consume.

Kept separate from the plugins so they can be unit-tested directly
against both synthetic renders and the real files of the host running
the test suite.
"""

from __future__ import annotations

__all__ = [
    "parse_meminfo",
    "parse_proc_stat",
    "parse_loadavg",
    "parse_lustre_stats",
    "parse_nfs",
    "parse_lnet_stats",
    "parse_counter_file",
    "parse_gpcdr",
]

CPU_FIELDS = ("user", "nice", "sys", "idle", "iowait", "irq", "softirq", "steal")


def parse_meminfo(text: str) -> dict[str, int]:
    """Parse /proc/meminfo into {key: kB} (unitless rows pass through)."""
    out: dict[str, int] = {}
    for line in text.splitlines():
        if ":" not in line:
            continue
        key, _, rest = line.partition(":")
        key = key.strip()
        parts = rest.split()
        if not key or not parts:
            continue
        try:
            out[key] = int(parts[0])
        except ValueError:
            continue
    return out


def parse_proc_stat(text: str) -> dict[str, int]:
    """Parse /proc/stat.

    Returns a flat dict: ``cpu_user``/``cpu_sys``/... for the aggregate
    line, ``cpuN_user``/... per cpu, plus ``ctxt`` and ``processes``.
    """
    out: dict[str, int] = {}
    for line in text.splitlines():
        parts = line.split()
        if not parts:
            continue
        head = parts[0]
        if head.startswith("cpu"):
            label = "cpu" if head == "cpu" else head
            for i, field in enumerate(CPU_FIELDS):
                if 1 + i < len(parts):
                    out[f"{label}_{field}"] = int(parts[1 + i])
        elif head in ("ctxt", "processes", "procs_running", "procs_blocked"):
            out[head] = int(parts[1])
    return out


def parse_loadavg(text: str) -> dict[str, float]:
    parts = text.split()
    running, _, total = parts[3].partition("/")
    return {
        "load1": float(parts[0]),
        "load5": float(parts[1]),
        "load15": float(parts[2]),
        "runnable": int(running),
        "total_procs": int(total),
    }


def parse_lustre_stats(text: str) -> dict[str, int]:
    """Parse a Lustre llite ``stats`` file into {event: count}.

    The count is the second column ("samples"); byte-sum columns are
    exposed as ``<event>_sum`` when present (read_bytes/write_bytes).
    """
    out: dict[str, int] = {}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) < 2 or parts[0] == "snapshot_time":
            continue
        name = parts[0]
        try:
            out[name] = int(parts[1])
        except ValueError:
            continue
        if len(parts) >= 7 and parts[3].strip("[]") == "bytes":
            out[f"{name}_sum"] = int(parts[6])
    return out


def parse_nfs(text: str) -> dict[str, int]:
    """Parse /proc/net/rpc/nfs: rpc call counts and proc3 op totals."""
    out: dict[str, int] = {}
    for line in text.splitlines():
        parts = line.split()
        if not parts:
            continue
        if parts[0] == "rpc" and len(parts) >= 4:
            out["rpc_calls"] = int(parts[1])
            out["rpc_retrans"] = int(parts[2])
        elif parts[0] == "proc3" and len(parts) > 2:
            out["nfs3_ops"] = sum(int(v) for v in parts[2:])
    return out


LNET_FIELDS = (
    "msgs_alloc", "msgs_max", "errors", "send_count", "recv_count",
    "route_count", "drop_count", "send_length", "recv_length",
    "route_length", "drop_length",
)


def parse_lnet_stats(text: str) -> dict[str, int]:
    parts = text.split()
    return {name: int(parts[i]) for i, name in enumerate(LNET_FIELDS) if i < len(parts)}


def parse_counter_file(text: str) -> int:
    """A /sys one-value counter file."""
    return int(text.split()[0])


def parse_gpcdr(text: str) -> dict[str, int | float]:
    """Parse the gpcdr metrics file into {metric_name: value}."""
    out: dict[str, int | float] = {}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) != 2:
            continue
        name, value = parts
        out[name] = float(value) if name == "timestamp" else int(value)
    return out
