"""Job-id sampler: associates samples with the job running on the node.

The paper's application profiles (Fig. 12) are built by combining LDMS
data with scheduler data (§VI-B); LDMS deployments carry a ``jobid``
sampler whose single metric is the resource manager's current job id on
the node, written by the job prolog to a well-known file.  Storing it
alongside the other sets lets analysis attribute any metric row to a
job without consulting the scheduler's log.
"""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler

__all__ = ["JobidSampler"]

JOBID_PATH = "/var/run/ldms_jobid"


@register_sampler("jobid")
class JobidSampler(SamplerPlugin):
    """One U64 metric, ``job_id`` (0 = no job on the node)."""

    def config(self, instance: str, component_id: int = 0,
               path: str = JOBID_PATH, **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        self.path = path
        self.set = self.create_set(instance, "jobid",
                                   [("job_id", MetricType.U64)])

    def do_sample(self, now: float) -> None:
        try:
            value = int(self.daemon.fs.read(self.path).split()[0])
        except (FileNotFoundError, ValueError, IndexError):
            value = 0
        self.set.set_values((value,))
