"""CPU utilization sampler: /proc/stat.

Collects the §II "CPU information: Utilization (user, sys, idle, wait)"
metrics, optionally per CPU.
"""

from __future__ import annotations

from repro.core.metric import MetricType
from repro.core.sampler import SamplerPlugin, register_sampler
from repro.plugins.samplers.parsers import CPU_FIELDS, parse_proc_stat

__all__ = ["ProcstatSampler"]


@register_sampler("procstat")
class ProcstatSampler(SamplerPlugin):
    """Samples jiffy counters from /proc/stat as U64 metrics.

    Config options
    --------------
    percpu:
        Truthy to also collect per-cpu rows (``cpu0_user``...);
        default collects only the aggregate ``cpu_*`` row plus
        ``ctxt``/``processes``.
    path:
        File to read (default ``/proc/stat``).
    """

    EXTRA = ("ctxt", "processes", "procs_running", "procs_blocked")

    def config(self, instance: str, component_id: int = 0, percpu=False,
               path: str = "/proc/stat", **kwargs) -> None:
        super().config(instance, component_id, **kwargs)
        self.path = path
        if isinstance(percpu, str):
            percpu = percpu.lower() in ("1", "true", "yes")
        self.percpu = bool(percpu)
        names = [f"cpu_{f}" for f in CPU_FIELDS]
        if self.percpu:
            # Discover the cpu count from the current file content.
            snapshot = parse_proc_stat(self.daemon.fs.read(self.path))
            cpus = sorted(
                {k.split("_", 1)[0] for k in snapshot if k.startswith("cpu") and k != "cpu_user"
                 and not k.startswith("cpu_")},
                key=lambda c: int(c[3:]),
            )
            for cpu in cpus:
                names.extend(f"{cpu}_{f}" for f in CPU_FIELDS)
        names.extend(self.EXTRA)
        self.metrics = tuple(names)
        self.set = self.create_set(
            instance, "procstat", [(m, MetricType.U64) for m in self.metrics]
        )

    def do_sample(self, now: float) -> None:
        data = parse_proc_stat(self.daemon.fs.read(self.path))
        self.set.set_values([data.get(m, 0) for m in self.metrics])
