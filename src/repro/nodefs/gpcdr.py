"""Synthetic Cray ``gpcdr`` HSN performance-counter interface.

On Blue Waters, Cray's ``gpcdr`` kernel module aggregates Gemini
network-tile performance counters into per-direction, node-level
metrics exposed as files under /sys (paper §III-C).  A userspace init
script configures which counters combine into which metrics using the
runtime routing data; the LDMS gpcdr sampler then just reads the files.

:class:`GpcdrModel` is the producer side of that interface for the
simulator: the Gemini network model pushes per-direction traffic and
stall time into it, and it renders the /sys file the sampler reads.

Exposed metrics per direction ``d`` in X+/X-/Y+/Y-/Z+/Z-:

* ``traffic_<d>`` — delivered bytes (cumulative)
* ``packets_<d>`` — delivered packets (cumulative)
* ``stalled_<d>`` — output-credit-stall time, nanoseconds (cumulative)
* ``linkstatus_<d>`` — number of live lanes (0 = link down)
* ``linkspeed_<d>`` — static theoretical max bandwidth, bytes/s (from
  the link media type; used to derive percent-bandwidth)
"""

from __future__ import annotations

from typing import Callable

from repro.nodefs.fs import SynthFS

__all__ = ["GpcdrModel", "GEMINI_DIRECTIONS", "LINK_BANDWIDTH"]

GEMINI_DIRECTIONS = ("X+", "X-", "Y+", "Y-", "Z+", "Z-")

#: Theoretical max bandwidth by link media type, bytes/s.  Gemini torus
#: links are backplane (within chassis), mezzanine (within cage) or
#: cable (between cabinets); values follow the published Gemini specs.
LINK_BANDWIDTH = {
    "backplane": 9.375e9,
    "mezzanine": 6.25e9,
    "cable": 4.68e9,
}

GPCDR_PATH = "/sys/devices/virtual/gpcdr/gpcdr/metricsets/links/metrics"


class GpcdrModel:
    """Per-node (per-Gemini) HSN counter state.

    Parameters
    ----------
    clock:
        Zero-argument callable returning now (seconds).
    media:
        Mapping direction -> link media type (defaults: X/Z backplane-ish
        topology is machine specific; the torus builder supplies this).
    fs:
        SynthFS to register the metrics file into.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        media: dict[str, str] | None = None,
        fs: SynthFS | None = None,
    ):
        self.clock = clock
        self.fs = fs if fs is not None else SynthFS()
        media = media or {d: "cable" for d in GEMINI_DIRECTIONS}
        unknown = set(media.values()) - set(LINK_BANDWIDTH)
        if unknown:
            raise ValueError(f"unknown link media types: {sorted(unknown)}")
        self.media = {d: media.get(d, "cable") for d in GEMINI_DIRECTIONS}
        self.traffic = {d: 0.0 for d in GEMINI_DIRECTIONS}  # bytes
        self.packets = {d: 0.0 for d in GEMINI_DIRECTIONS}
        self.stall_ns = {d: 0.0 for d in GEMINI_DIRECTIONS}
        self.lanes = {d: 3 for d in GEMINI_DIRECTIONS}  # 3 live lanes = healthy
        #: Optional zero-arg callable invoked before rendering — the
        #: network model hooks this to lazily integrate link counters
        #: up to "now" (mirrors gpcdr reading hardware counters on
        #: demand).
        self.sync_hook = None
        self.fs.register(GPCDR_PATH, self.render)

    def link_speed(self, direction: str) -> float:
        return LINK_BANDWIDTH[self.media[direction]]

    # ------------------------------------------------------------------
    # producer API (called by the Gemini network model)
    # ------------------------------------------------------------------
    def add_traffic(self, direction: str, nbytes: float, npackets: float | None = None) -> None:
        self.traffic[direction] += nbytes
        self.packets[direction] += npackets if npackets is not None else nbytes / 64.0

    def add_stall(self, direction: str, seconds: float) -> None:
        self.stall_ns[direction] += seconds * 1e9

    def set_link_status(self, direction: str, lanes: int) -> None:
        self.lanes[direction] = lanes

    # ------------------------------------------------------------------
    def render(self) -> str:
        if self.sync_hook is not None:
            self.sync_hook()
        lines = [f"timestamp {self.clock():.6f}"]
        for d in GEMINI_DIRECTIONS:
            lines.append(f"traffic_{d} {int(self.traffic[d])}")
            lines.append(f"packets_{d} {int(self.packets[d])}")
            lines.append(f"stalled_{d} {int(self.stall_ns[d])}")
            lines.append(f"linkstatus_{d} {self.lanes[d]}")
            lines.append(f"linkspeed_{d} {int(self.link_speed(d))}")
        return "\n".join(lines) + "\n"
