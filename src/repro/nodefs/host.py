"""Per-node counter models rendering a synthetic /proc and /sys.

A :class:`HostModel` owns the kernel-style counters of one node — CPU
jiffies, memory levels, Lustre/NFS client statistics, Ethernet and
Infiniband traffic counters, LNET totals — and registers text renderers
for them into a :class:`~repro.nodefs.fs.SynthFS`.

Counters *integrate* workload rates over time: experiments and the
cluster/job models set the rate fields (``cpu_user_frac``,
``lustre_open_rate``, ``eth_tx_bps``, ...) and every file read advances
the integration to the current clock.  Levels (memory) are set
directly.  A small multiplicative jitter models real-world counter
noise; it is driven by a per-host RNG so runs are reproducible.

The rendered formats match Linux closely enough that the sampler
plugins parse real /proc files with the same code (verified in tests on
the host running the suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nodefs.fs import SynthFS
from repro.util.rngtools import spawn_rng

__all__ = ["HostProfile", "HostModel"]


@dataclass(frozen=True)
class HostProfile:
    """Static hardware/software shape of a node."""

    ncpus: int = 16
    mem_total_kb: int = 64 * 1024 * 1024  # Chama: 64 GB/node (paper §VI-B)
    hz: int = 100  # jiffies per second
    lustre_mounts: tuple[str, ...] = ("snx11024",)
    nfs: bool = True
    eth_ifaces: tuple[str, ...] = ("eth0",)
    ib_devices: tuple[str, ...] = ("mlx4_0",)
    lnet: bool = True


# Idle-baseline rates applied when no workload is set.
_IDLE_CPU_USER = 0.002
_IDLE_CPU_SYS = 0.004


class HostModel:
    """Evolving counter state of one node.

    Parameters
    ----------
    name:
        Node name (only used in repr/debug).
    clock:
        Zero-argument callable returning "now" in seconds (the sim
        engine's clock, or ``time.monotonic`` for demos).
    profile:
        Hardware shape.
    seed:
        RNG seed for counter jitter.
    fs:
        SynthFS to register renderers into (a private one is created if
        omitted).
    """

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        profile: HostProfile = HostProfile(),
        seed: int = 0,
        fs: SynthFS | None = None,
    ):
        self.name = name
        self.clock = clock
        self.profile = profile
        self.rng = spawn_rng(seed, "host", name)
        self.fs = fs if fs is not None else SynthFS()
        self._last = float(clock())

        p = profile
        # --- workload rate fields (set by job/cluster models) -------------
        self.cpu_user_frac = 0.0  # of total node CPU, [0, 1]
        self.cpu_sys_frac = 0.0
        self.cpu_iowait_frac = 0.0
        self.loadavg_bias = 0.0
        self.lustre_open_rate = 0.05  # per second, idle baseline
        self.lustre_close_rate = 0.05
        self.lustre_read_bps = 0.0
        self.lustre_write_bps = 0.0
        self.lustre_dirty_hit_rate = 0.0
        self.lustre_dirty_miss_rate = 0.0
        self.nfs_ops_rate = 0.1
        self.eth_rx_bps = 2e3
        self.eth_tx_bps = 2e3
        self.ib_rx_bps = 0.0
        self.ib_tx_bps = 0.0
        self.lnet_send_bps = 0.0
        self.lnet_recv_bps = 0.0

        # --- levels --------------------------------------------------------
        self.mem_active_kb = int(0.02 * p.mem_total_kb)
        self.mem_cached_kb = int(0.05 * p.mem_total_kb)
        self.mem_dirty_kb = 64
        self.mem_used_extra_kb = 0  # non-active, non-cached use

        # --- counters -------------------------------------------------------
        ncpu = p.ncpus
        # jiffies per cpu: user, nice, system, idle, iowait, irq, softirq, steal
        self.cpu_jiffies = np.zeros((ncpu, 8), dtype=np.float64)
        self.ctxt = 0.0
        self.processes = 0.0
        self.lustre = {
            m: dict(
                open=0.0,
                close=0.0,
                read_bytes=0.0,
                write_bytes=0.0,
                dirty_pages_hits=0.0,
                dirty_pages_misses=0.0,
            )
            for m in p.lustre_mounts
        }
        self.nfs_ops = 0.0
        self.eth = {i: dict(rx_bytes=0.0, tx_bytes=0.0, rx_packets=0.0, tx_packets=0.0,
                            rx_errors=0.0, tx_errors=0.0, rx_dropped=0.0, tx_dropped=0.0)
                    for i in p.eth_ifaces}
        self.ib = {d: dict(port_rcv_data=0.0, port_xmit_data=0.0,
                           port_rcv_packets=0.0, port_xmit_packets=0.0)
                   for d in p.ib_devices}
        self.lnet_counters = dict(send_count=0.0, recv_count=0.0,
                                  send_length=0.0, recv_length=0.0, drop_count=0.0)

        self._register()

    # ------------------------------------------------------------------
    # workload helpers
    # ------------------------------------------------------------------
    def set_workload(self, **rates) -> None:
        """Set any rate/level fields by keyword, advancing first so the
        change takes effect from "now"."""
        self.advance()
        for key, value in rates.items():
            if not hasattr(self, key):
                raise AttributeError(f"HostModel has no workload field {key!r}")
            setattr(self, key, value)

    def idle(self) -> None:
        """Reset workload fields to the idle baseline."""
        self.set_workload(
            cpu_user_frac=0.0, cpu_sys_frac=0.0, cpu_iowait_frac=0.0,
            lustre_open_rate=0.05, lustre_close_rate=0.05,
            lustre_read_bps=0.0, lustre_write_bps=0.0,
            lustre_dirty_hit_rate=0.0, lustre_dirty_miss_rate=0.0,
            ib_rx_bps=0.0, ib_tx_bps=0.0,
            lnet_send_bps=0.0, lnet_recv_bps=0.0,
        )
        self.mem_active_kb = int(0.02 * self.profile.mem_total_kb)

    # ------------------------------------------------------------------
    # integration
    # ------------------------------------------------------------------
    def _jitter(self) -> float:
        return float(np.clip(1.0 + 0.05 * self.rng.standard_normal(), 0.0, None))

    def advance(self) -> float:
        """Integrate counters up to the clock; returns now."""
        now = float(self.clock())
        dt = now - self._last
        if dt <= 0:
            return now
        self._last = now
        p = self.profile
        hz = p.hz

        # CPU jiffies: distribute the node-level fractions over cpus with
        # mild imbalance, fold in the idle baseline.
        user = min(self.cpu_user_frac + _IDLE_CPU_USER, 1.0)
        sys_ = min(self.cpu_sys_frac + _IDLE_CPU_SYS, 1.0 - user)
        iow = min(self.cpu_iowait_frac, max(1.0 - user - sys_, 0.0))
        idle = max(1.0 - user - sys_ - iow, 0.0)
        share = np.full(p.ncpus, 1.0 / p.ncpus)
        share *= self.rng.uniform(0.9, 1.1, p.ncpus)
        share /= share.sum()
        node_jiffies = dt * hz * p.ncpus
        self.cpu_jiffies[:, 0] += node_jiffies * user * share
        self.cpu_jiffies[:, 2] += node_jiffies * sys_ * share
        self.cpu_jiffies[:, 3] += node_jiffies * idle * share
        self.cpu_jiffies[:, 4] += node_jiffies * iow * share
        self.ctxt += dt * (500 + 5e4 * (user + sys_)) * self._jitter()
        self.processes += dt * 2.0 * self._jitter()

        # Lustre
        for ctrs in self.lustre.values():
            ctrs["open"] += dt * self.lustre_open_rate * self._jitter()
            ctrs["close"] += dt * self.lustre_close_rate * self._jitter()
            ctrs["read_bytes"] += dt * self.lustre_read_bps * self._jitter()
            ctrs["write_bytes"] += dt * self.lustre_write_bps * self._jitter()
            ctrs["dirty_pages_hits"] += dt * self.lustre_dirty_hit_rate * self._jitter()
            ctrs["dirty_pages_misses"] += dt * self.lustre_dirty_miss_rate * self._jitter()

        self.nfs_ops += dt * self.nfs_ops_rate * self._jitter()

        for ctrs in self.eth.values():
            rx = dt * self.eth_rx_bps * self._jitter()
            tx = dt * self.eth_tx_bps * self._jitter()
            ctrs["rx_bytes"] += rx
            ctrs["tx_bytes"] += tx
            ctrs["rx_packets"] += rx / 1000.0
            ctrs["tx_packets"] += tx / 1000.0

        for ctrs in self.ib.values():
            rx = dt * self.ib_rx_bps * self._jitter()
            tx = dt * self.ib_tx_bps * self._jitter()
            # IB port data counters count 4-byte words, like real hardware.
            ctrs["port_rcv_data"] += rx / 4.0
            ctrs["port_xmit_data"] += tx / 4.0
            ctrs["port_rcv_packets"] += rx / 2048.0
            ctrs["port_xmit_packets"] += tx / 2048.0

        self.lnet_counters["send_length"] += dt * self.lnet_send_bps * self._jitter()
        self.lnet_counters["recv_length"] += dt * self.lnet_recv_bps * self._jitter()
        self.lnet_counters["send_count"] += dt * self.lnet_send_bps / 4096.0
        self.lnet_counters["recv_count"] += dt * self.lnet_recv_bps / 4096.0
        return now

    # ------------------------------------------------------------------
    # renderers
    # ------------------------------------------------------------------
    def _register(self) -> None:
        fs, p = self.fs, self.profile
        fs.register("/proc/stat", self._render_stat)
        fs.register("/proc/meminfo", self._render_meminfo)
        fs.register("/proc/loadavg", self._render_loadavg)
        for mount in p.lustre_mounts:
            fs.register(
                f"/proc/fs/lustre/llite/{mount}-ffff0000/stats",
                lambda m=mount: self._render_lustre(m),
            )
        if p.nfs:
            fs.register("/proc/net/rpc/nfs", self._render_nfs)
        for iface in p.eth_ifaces:
            for ctr in ("rx_bytes", "tx_bytes", "rx_packets", "tx_packets",
                        "rx_errors", "tx_errors", "rx_dropped", "tx_dropped"):
                fs.register(
                    f"/sys/class/net/{iface}/statistics/{ctr}",
                    lambda i=iface, c=ctr: self._render_eth(i, c),
                )
        for dev in p.ib_devices:
            for ctr in ("port_rcv_data", "port_xmit_data",
                        "port_rcv_packets", "port_xmit_packets"):
                fs.register(
                    f"/sys/class/infiniband/{dev}/ports/1/counters/{ctr}",
                    lambda d=dev, c=ctr: self._render_ib(d, c),
                )
        if p.lnet:
            fs.register("/proc/sys/lnet/stats", self._render_lnet)

    def _render_stat(self) -> str:
        self.advance()
        total = self.cpu_jiffies.sum(axis=0)
        lines = ["cpu  " + " ".join(str(int(v)) for v in total)]
        for i in range(self.profile.ncpus):
            lines.append(f"cpu{i} " + " ".join(str(int(v)) for v in self.cpu_jiffies[i]))
        lines.append(f"ctxt {int(self.ctxt)}")
        lines.append("btime 1400000000")
        lines.append(f"processes {int(self.processes)}")
        lines.append("procs_running 1")
        lines.append("procs_blocked 0")
        return "\n".join(lines) + "\n"

    def _render_meminfo(self) -> str:
        self.advance()
        p = self.profile
        active = int(self.mem_active_kb)
        cached = int(self.mem_cached_kb)
        used = active + cached + int(self.mem_used_extra_kb)
        free = max(p.mem_total_kb - used, 0)
        rows = [
            ("MemTotal", p.mem_total_kb),
            ("MemFree", free),
            ("Buffers", 2048),
            ("Cached", cached),
            ("SwapCached", 0),
            ("Active", active),
            ("Inactive", cached // 2),
            ("Dirty", int(self.mem_dirty_kb)),
            ("Writeback", 0),
            ("AnonPages", active),
            ("Mapped", 4096),
            ("Shmem", 1024),
            ("Slab", 65536),
            ("SwapTotal", 0),
            ("SwapFree", 0),
            ("CommitLimit", p.mem_total_kb // 2),
            ("Committed_AS", used),
            ("VmallocTotal", 34359738367),
            ("VmallocUsed", 0),
            ("HugePages_Total", 0),
        ]
        return "".join(f"{k}:{str(v).rjust(15)} kB\n" if k != "HugePages_Total"
                       else f"{k}:{str(v).rjust(15)}\n" for k, v in rows)

    def _render_loadavg(self) -> str:
        self.advance()
        load = self.profile.ncpus * (self.cpu_user_frac + self.cpu_sys_frac) + self.loadavg_bias
        l1 = max(load * self._jitter(), 0.0)
        return f"{l1:.2f} {load:.2f} {load:.2f} 1/{int(self.processes) + 100} {int(self.processes) + 1000}\n"

    def _render_lustre(self, mount: str) -> str:
        self.advance()
        c = self.lustre[mount]
        now = self._last
        lines = [f"snapshot_time {now:.6f} secs.usecs"]
        for key in ("dirty_pages_hits", "dirty_pages_misses"):
            lines.append(f"{key} {int(c[key])} samples [regs]")
        for key in ("read_bytes", "write_bytes"):
            n_ops = int(c[key] / 1048576.0) + 1
            lines.append(f"{key} {int(c[key])} samples [bytes] 4096 1048576 {int(c[key])}")
            del n_ops
        for key in ("open", "close"):
            lines.append(f"{key} {int(c[key])} samples [regs]")
        return "\n".join(lines) + "\n"

    def _render_nfs(self) -> str:
        self.advance()
        ops = int(self.nfs_ops)
        return (
            f"net {ops} {ops} 0 0\n"
            f"rpc {ops} 0 0\n"
            f"proc3 22 0 {ops} 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n"
        )

    def _render_eth(self, iface: str, ctr: str) -> str:
        self.advance()
        return f"{int(self.eth[iface][ctr])}\n"

    def _render_ib(self, dev: str, ctr: str) -> str:
        self.advance()
        return f"{int(self.ib[dev][ctr])}\n"

    def _render_lnet(self) -> str:
        self.advance()
        c = self.lnet_counters
        # msgs_alloc msgs_max errors send_count recv_count route_count
        # drop_count send_length recv_length route_length drop_length
        return (
            f"0 2048 0 {int(c['send_count'])} {int(c['recv_count'])} 0 "
            f"{int(c['drop_count'])} {int(c['send_length'])} {int(c['recv_length'])} 0 0\n"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<HostModel {self.name!r} ncpus={self.profile.ncpus}>"
