"""Filesystem interface for sampler plugins.

The interface is the minimal surface samplers need: read a whole small
file as text, check existence, list a directory.  Two implementations:

* :class:`RealFS` — the host's real filesystem (used on Linux to sample
  the actual /proc and /sys in the runnable examples and tests).
* :class:`SynthFS` — a registry of render callables keyed by path,
  backed by workload models.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.util.errors import ReproError

__all__ = ["FileSystem", "RealFS", "SynthFS"]


class FileSystem:
    def read(self, path: str) -> str:
        """Return the file's full text content."""
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def listdir(self, path: str) -> list[str]:
        raise NotImplementedError


class RealFS(FileSystem):
    """Pass-through to the real filesystem."""

    def read(self, path: str) -> str:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            return f.read()

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def listdir(self, path: str) -> list[str]:
        return sorted(os.listdir(path))


class SynthFS(FileSystem):
    """Synthetic file tree: path -> render callable.

    Render callables take no arguments and return the file text as of
    "now"; time flows through the host models they close over, not
    through this class.
    """

    def __init__(self) -> None:
        self._files: dict[str, Callable[[], str]] = {}

    def register(self, path: str, render: Callable[[], str]) -> None:
        path = self._norm(path)
        if path in self._files:
            raise ReproError(f"synthetic file {path!r} already registered")
        self._files[path] = render

    def register_static(self, path: str, content: str) -> None:
        self.register(path, lambda: content)

    def unregister(self, path: str) -> None:
        self._files.pop(self._norm(path), None)

    @staticmethod
    def _norm(path: str) -> str:
        return "/" + path.strip("/")

    def read(self, path: str) -> str:
        path = self._norm(path)
        try:
            render = self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None
        return render()

    def exists(self, path: str) -> bool:
        path = self._norm(path)
        if path in self._files:
            return True
        prefix = path.rstrip("/") + "/"
        return any(p.startswith(prefix) for p in self._files)

    def listdir(self, path: str) -> list[str]:
        prefix = self._norm(path).rstrip("/") + "/"
        names = set()
        for p in self._files:
            if p.startswith(prefix):
                names.add(p[len(prefix) :].split("/", 1)[0])
        if not names and not self.exists(path):
            raise FileNotFoundError(path)
        return sorted(names)

    def paths(self) -> list[str]:
        return sorted(self._files)
