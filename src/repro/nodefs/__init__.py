"""Synthetic /proc and /sys file trees.

Sampler plugins read node counters through the small
:class:`~repro.nodefs.fs.FileSystem` interface.  On a real Linux host
that is :class:`~repro.nodefs.fs.RealFS` (the actual /proc and /sys);
in the simulator it is a :class:`~repro.nodefs.fs.SynthFS` whose files
are rendered on demand from a :class:`~repro.nodefs.host.HostModel` —
counters that evolve with the workload the cluster model imposes.

This is the substitution that replaces the paper's hardware/TOSS2 and
Cray CLE environments (DESIGN.md): the sampler code path (open file →
parse text → metric set) is identical in both modes.
"""

from repro.nodefs.fs import FileSystem, RealFS, SynthFS
from repro.nodefs.host import HostModel, HostProfile
from repro.nodefs.gpcdr import GpcdrModel, GEMINI_DIRECTIONS

__all__ = [
    "FileSystem",
    "RealFS",
    "SynthFS",
    "HostModel",
    "HostProfile",
    "GpcdrModel",
    "GEMINI_DIRECTIONS",
]
