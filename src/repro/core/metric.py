"""Metric value types and per-metric descriptors.

LDMS metric sets are typed, fixed-layout records.  Each metric has a
value type drawn from the C-like menu below, a name, a user-assigned
component id (identifying which node/component the value describes),
and a fixed offset into the set's data chunk.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

__all__ = ["MetricType", "MetricDesc", "METRIC_NAME_LEN"]

#: Fixed on-wire width of a metric name, bytes (NUL padded).  Names like
#: ``dirty_pages_hits#stats.snx11024`` (paper §IV-B) must fit.
METRIC_NAME_LEN = 64


class MetricType(enum.IntEnum):
    """Value types supported in a metric set.

    The integer values are the on-wire type tags.
    """

    U8 = 1
    S8 = 2
    U16 = 3
    S16 = 4
    U32 = 5
    S32 = 6
    U64 = 7
    S64 = 8
    F32 = 9
    F64 = 10

    @property
    def struct_code(self) -> str:
        return _STRUCT_CODE[self]

    @property
    def size(self) -> int:
        return struct.calcsize("<" + self.struct_code)

    @property
    def is_float(self) -> bool:
        return self in (MetricType.F32, MetricType.F64)

    @property
    def is_signed(self) -> bool:
        return self in (MetricType.S8, MetricType.S16, MetricType.S32, MetricType.S64)

    def clamp(self, value: float | int) -> float | int:
        """Coerce a Python number into this type's representable range.

        Integer counters wrap like their C counterparts would; floats
        pass through.  Sampler plugins use this so a synthetic counter
        that exceeds 2^64 behaves like the kernel's would.
        """
        if self.is_float:
            return float(value)
        bits = 8 * self.size
        v = int(value)
        if self.is_signed:
            lo, span = -(1 << (bits - 1)), 1 << bits
            return (v - lo) % span + lo
        return v % (1 << bits)

    @classmethod
    def parse(cls, text: str) -> "MetricType":
        """Parse a type name as written in plugin config (``"u64"``)."""
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown metric type {text!r}") from None


_STRUCT_CODE = {
    MetricType.U8: "B",
    MetricType.S8: "b",
    MetricType.U16: "H",
    MetricType.S16: "h",
    MetricType.U32: "I",
    MetricType.S32: "i",
    MetricType.U64: "Q",
    MetricType.S64: "q",
    MetricType.F32: "f",
    MetricType.F64: "d",
}


@dataclass(frozen=True)
class MetricDesc:
    """Descriptor of one metric inside a set (lives in the metadata chunk).

    Attributes
    ----------
    name:
        Metric name, e.g. ``"Active"`` or ``"open#stats.snx11024"``.
        At most :data:`METRIC_NAME_LEN` - 1 bytes when UTF-8 encoded.
    mtype:
        Value type.
    component_id:
        User-defined id associating the value with a component (node).
    data_offset:
        Byte offset of the value within the set's data chunk.
    """

    name: str
    mtype: MetricType
    component_id: int
    data_offset: int

    def __post_init__(self) -> None:
        encoded = self.name.encode("utf-8")
        if not self.name:
            raise ValueError("metric name must be non-empty")
        if len(encoded) >= METRIC_NAME_LEN:
            raise ValueError(
                f"metric name too long ({len(encoded)} bytes, max {METRIC_NAME_LEN - 1}): "
                f"{self.name!r}"
            )
        if self.component_id < 0:
            raise ValueError("component_id must be >= 0")
        if self.data_offset < 0:
            raise ValueError("data_offset must be >= 0")

    # On-wire descriptor: name[64] + comp_id u64 + type u8 + offset u32
    WIRE_FMT = f"<{METRIC_NAME_LEN}sQBI"
    WIRE_SIZE = struct.calcsize(WIRE_FMT)

    def pack(self) -> bytes:
        return struct.pack(
            self.WIRE_FMT,
            self.name.encode("utf-8"),
            self.component_id,
            int(self.mtype),
            self.data_offset,
        )

    @classmethod
    def unpack(cls, raw: bytes | memoryview) -> "MetricDesc":
        name_b, comp_id, tag, offset = struct.unpack(cls.WIRE_FMT, raw)
        return cls(
            name=name_b.rstrip(b"\x00").decode("utf-8"),
            mtype=MetricType(tag),
            component_id=comp_id,
            data_offset=offset,
        )

    @classmethod
    def unpack_block(cls, raw: bytes | memoryview) -> list["MetricDesc"]:
        """Unpack a contiguous run of descriptors in one C-level pass.

        Mirror construction parses one block per connected sampler; a
        single ``iter_unpack`` plus validation-free instantiation is
        several times cheaper than per-descriptor :meth:`unpack` calls
        at 9,000-producer fan-in.  Wire-format fields are already range
        safe (unsigned ints, bounded name field); only the checks that
        guard against garbage blocks are kept.
        """
        descs: list[MetricDesc] = []
        new = cls.__new__
        set_ = object.__setattr__
        types = _TYPE_BY_TAG
        for name_b, comp_id, tag, offset in struct.iter_unpack(cls.WIRE_FMT, raw):
            name = name_b.rstrip(b"\x00").decode("utf-8")
            if not name:
                raise ValueError("metric name must be non-empty")
            mtype = types.get(tag)
            if mtype is None:
                raise ValueError(f"{tag} is not a valid MetricType")
            d = new(cls)
            set_(d, "name", name)
            set_(d, "mtype", mtype)
            set_(d, "component_id", comp_id)
            set_(d, "data_offset", offset)
            descs.append(d)
        return descs


#: tag -> MetricType without the IntEnum __call__ overhead (the enum
#: constructor is a surprisingly hot call when unpacking thousands of
#: descriptor blocks).
_TYPE_BY_TAG = {int(t): t for t in MetricType}
