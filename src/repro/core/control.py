"""Daemon control channel: the ``ldmsctl`` text command protocol.

ldmsd is configured at runtime by process-owner issued commands over a
UNIX domain socket (paper §IV-B).  This module implements the command
language against a live :class:`~repro.core.ldmsd.Ldmsd` and an optional
real UNIX-socket server for it.

Intervals on the control channel are expressed in **microseconds**, as
in LDMS proper; the Python API uses seconds.

Supported commands (attribute syntax is ``key=value``)::

    load name=<plugin>
    config name=<plugin> instance=<inst> component_id=<id> [plugin args...]
    start name=<instance> interval=<usec> [offset=<usec>]
    stop name=<instance>
    term name=<instance>
    listen xprt=<xprt> port=<port> [host=<host>]
    add host=<host> xprt=<xprt> [port=<port>] interval=<usec>
        [offset=<usec>] [sets=<a>,<b>] [standby=<true|false>]
        [passive=<true|false>] [name=<prod>]
    advertise host=<host> xprt=<xprt> [port=<port>] [name=<this-daemon>]
    remove name=<producer>
    standby_activate name=<producer>
    store name=<store-plugin> [schema=<schema>] [container=<path>]
          [producers=<a>,<b>] [metrics=<m1>,<m2>] [plugin args...]
    enable_query [hot_window=<sec>] [cache_entries=<n>]
    dir
    stats
    prof [export=chrome]
    quit

``stats`` returns the daemon's operational counters *plus* the full
telemetry-registry snapshot (counters, gauges, histogram summaries)
under the ``obs`` key; ``prof`` returns the registry's latency
histograms with their bucket vectors, exemplar traces, the freshness
tracker snapshot, and the flight-recorder window.  ``prof
export=chrome`` instead returns the daemon's recorded spans as Chrome
``trace_event`` JSON (the ``repro-trace`` CLI's wire verb).  Every
handled command is itself timed into the ``control.latency`` histogram.
"""

from __future__ import annotations

import json
import os
import shlex
import socket
import threading
from typing import TYPE_CHECKING

from repro.sim.shard import runtime_snapshot as shard_runtime_snapshot
from repro.util.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.ldmsd import Ldmsd

__all__ = ["parse_command", "ControlChannel", "UnixControlServer"]


def parse_command(line: str) -> tuple[str, dict[str, str]]:
    """Split ``verb key=value ...`` into a verb and attribute dict.

    Values may be quoted with shell rules.

    >>> parse_command('config name=meminfo instance="node 0/mem"')
    ('config', {'name': 'meminfo', 'instance': 'node 0/mem'})
    """
    parts = shlex.split(line.strip())
    if not parts:
        raise ConfigError("empty command")
    verb = parts[0].lower()
    attrs: dict[str, str] = {}
    for tok in parts[1:]:
        if "=" not in tok:
            raise ConfigError(f"malformed attribute {tok!r} (expected key=value)")
        key, _, value = tok.partition("=")
        if not key:
            raise ConfigError(f"malformed attribute {tok!r}")
        attrs[key] = value
    return verb, attrs


def _usec(attrs: dict[str, str], key: str, required: bool = True) -> float | None:
    if key not in attrs:
        if required:
            raise ConfigError(f"missing required attribute {key}=")
        return None
    try:
        return float(attrs[key]) / 1e6
    except ValueError:
        raise ConfigError(f"bad microsecond value {key}={attrs[key]!r}") from None


class ControlChannel:
    """Executes control commands against a daemon.

    Every command returns a reply string beginning with ``0`` on success
    or ``E`` followed by the error message.
    """

    def __init__(self, daemon: "Ldmsd"):
        self.daemon = daemon
        self._loaded: set[str] = set()
        self._h_latency = daemon.obs.histogram("control.latency")
        self._c_commands = daemon.obs.counter("control.commands")
        self._c_errors = daemon.obs.counter("control.errors")

    def handle(self, line: str) -> str:
        t0 = self.daemon.env.now()
        self._c_commands.inc()
        try:
            verb, attrs = parse_command(line)
            out = self._dispatch(verb, attrs)
            return "0" + (f" {out}" if out else "")
        except ConfigError as exc:
            self._c_errors.inc()
            return f"E {exc}"
        finally:
            self._h_latency.observe(self.daemon.env.now() - t0)

    # ------------------------------------------------------------------
    def _dispatch(self, verb: str, attrs: dict[str, str]) -> str:
        handler = getattr(self, f"_cmd_{verb}", None)
        if handler is None:
            raise ConfigError(f"unknown command {verb!r}")
        return handler(attrs)

    @staticmethod
    def _need(attrs: dict[str, str], *keys: str) -> list[str]:
        missing = [k for k in keys if k not in attrs]
        if missing:
            raise ConfigError(f"missing required attribute(s): {', '.join(missing)}")
        return [attrs[k] for k in keys]

    def _cmd_load(self, attrs) -> str:
        """``load name=<plugin>``: mark a sampler plugin loadable."""
        (name,) = self._need(attrs, "name")
        from repro.core.sampler import sampler_registry

        if name not in sampler_registry:
            raise ConfigError(f"no sampler plugin {name!r}")
        self._loaded.add(name)
        return f"loaded {name}"

    def _cmd_config(self, attrs) -> str:
        """``config name=<plugin> instance=<i> ...``: instantiate + configure."""
        (name,) = self._need(attrs, "name")
        if name not in self._loaded:
            raise ConfigError(f"plugin {name!r} not loaded")
        kwargs = {k: v for k, v in attrs.items() if k != "name"}
        if "component_id" in kwargs:
            kwargs["component_id"] = int(kwargs["component_id"])
        plugin = self.daemon.load_sampler(name, **kwargs)
        return f"configured {plugin.instance}"

    def _cmd_start(self, attrs) -> str:
        """``start name=<inst> interval=<usec>``: begin periodic sampling."""
        (name,) = self._need(attrs, "name")
        interval = _usec(attrs, "interval")
        offset = _usec(attrs, "offset", required=False)
        self.daemon.start_sampler(name, interval=interval, offset=offset)
        return f"started {name}"

    def _cmd_stop(self, attrs) -> str:
        """``stop name=<inst>``: halt sampling, keep the instance."""
        (name,) = self._need(attrs, "name")
        self.daemon.stop_sampler(name)
        return f"stopped {name}"

    def _cmd_term(self, attrs) -> str:
        """``term name=<inst>``: stop and destroy a sampler instance."""
        (name,) = self._need(attrs, "name")
        plugin = self.daemon.sampler_plugins().get(name)
        if plugin is None:
            raise ConfigError(f"no sampler instance {name!r}")
        if name in self.daemon._schedules:
            self.daemon.stop_sampler(name)
        plugin.term()
        del self.daemon._plugins[name]
        return f"terminated {name}"

    def _cmd_listen(self, attrs) -> str:
        """``listen xprt=<x> port=<p>``: accept aggregator connections."""
        (xprt,) = self._need(attrs, "xprt")
        addr = self._addr_from(attrs, default_host="127.0.0.1")
        listener = self.daemon.listen(xprt, addr)
        port = getattr(listener, "port", None)
        return f"listening on {addr}" + (f" port={port}" if port is not None else "")

    def _cmd_add(self, attrs) -> str:
        """``add host=... interval=<usec>``: add an upstream producer."""
        (xprt,) = self._need(attrs, "xprt")
        interval = _usec(attrs, "interval")
        offset = _usec(attrs, "offset", required=False)
        sets = tuple(s for s in attrs.get("sets", "").split(",") if s)
        truthy = ("true", "1", "yes")
        standby = attrs.get("standby", "false").lower() in truthy
        passive = attrs.get("passive", "false").lower() in truthy
        host = attrs.get("host")
        if host is None and not passive:
            raise ConfigError("missing required attribute(s): host")
        name = attrs.get("name", host or "")
        if not name:
            raise ConfigError("passive producers require name=")
        addr = None
        if host is not None:
            addr = (host, int(attrs["port"])) if "port" in attrs else host
        self.daemon.add_producer(
            name=name,
            xprt=xprt,
            addr=addr,
            interval=interval,
            sets=sets,
            offset=offset,
            standby=standby,
            passive=passive,
        )
        return f"added producer {name}"

    def _cmd_advertise(self, attrs) -> str:
        """``advertise host=<h> xprt=<x>``: announce this daemon upstream."""
        host, xprt = self._need(attrs, "host", "xprt")
        addr = (host, int(attrs["port"])) if "port" in attrs else host
        self.daemon.advertise(xprt, addr, name=attrs.get("name"))
        return f"advertising to {host}"

    def _cmd_remove(self, attrs) -> str:
        """``remove name=<producer>``: drop a producer and its sets."""
        (name,) = self._need(attrs, "name")
        self.daemon.remove_producer(name)
        return f"removed {name}"

    def _cmd_standby_activate(self, attrs) -> str:
        """``standby_activate name=<producer>``: promote a standby producer."""
        (name,) = self._need(attrs, "name")
        self.daemon.activate_standby(name)
        return f"activated {name}"

    def _cmd_store(self, attrs) -> str:
        """``store name=<plugin> ...``: attach a store policy to the daemon."""
        (name,) = self._need(attrs, "name")
        schema = attrs.get("schema")
        producers = tuple(p for p in attrs.get("producers", "").split(",") if p) or None
        metrics = tuple(m for m in attrs.get("metrics", "").split(",") if m) or None
        passthrough = {
            k: v
            for k, v in attrs.items()
            if k not in ("name", "schema", "producers", "metrics")
        }
        self.daemon.add_store(
            name, schema=schema, producers=producers, metrics=metrics, **passthrough
        )
        return f"store {name} configured"

    def _cmd_enable_query(self, attrs) -> str:
        """``enable_query [hot_window=<s>] [cache_entries=<n>]``: attach
        the query/serving tier to the daemon's SOS store (PR 9)."""
        self.daemon.enable_query(
            hot_window=float(attrs.get("hot_window", 60.0)),
            cache_entries=int(attrs.get("cache_entries", 256)),
        )
        return "query enabled"

    def _cmd_dir(self, attrs) -> str:
        """``dir``: JSON directory of published sets (name/schema/sizes)."""
        infos = self.daemon.dir_info()
        return json.dumps(
            [
                {
                    "name": i.name,
                    "schema": i.schema,
                    "card": i.card,
                    "meta_size": i.meta_size,
                    "data_size": i.data_size,
                }
                for i in infos
            ]
        )

    def _cmd_stats(self, attrs) -> str:
        """``stats``: JSON operational counters + obs registry snapshot."""
        return json.dumps(self.daemon.stats())

    def _cmd_prof(self, attrs) -> str:
        """Histogram dumps: per-stage latency buckets (µs-scale), the
        columnar-arena sweep profile, freshness and flight-recorder
        snapshots.  ``export=chrome`` returns the span ring as Chrome
        ``trace_event`` JSON instead."""
        d = self.daemon
        if attrs.get("export") == "chrome":
            from repro.obs.spans import chrome_trace_events

            return json.dumps(chrome_trace_events([d.spans]))
        if "export" in attrs:
            raise ConfigError(f"unknown export format {attrs['export']!r}")
        now = d.env.now()
        return json.dumps(
            {
                "name": d.name,
                "histograms": d.obs.dump_histograms(),
                "traces": [t.as_dict() for t in d.tracer.last()],
                "arena": {
                    "sweeps": d.obs.counter("arena.sweeps").value,
                    "rows_vectorized":
                        d.obs.counter("arena.rows_vectorized").value,
                    "fallback_sets":
                        d.obs.counter("arena.fallback_sets").value,
                    # Schema-stable: zeroed, not None/omitted, when the
                    # columnar plane is off (REPRO_ARENA=0).
                    "pool": (d.set_pool.stats()
                             if d.set_pool is not None
                             else {"arenas": 0, "blocks": 0, "rows": 0}),
                },
                "freshness": d.freshness.snapshot(now),
                "flight": {
                    "total": d.flight.total,
                    "window": d.flight.window(),
                    "events": len(d.flight.events),
                },
                "spans": {
                    "total": d.spans.total,
                    "retained": len(d.spans.spans),
                },
                # Schema-stable shard-plane block (zeros when
                # REPRO_SHARDS is off); process-wide counters from the
                # conservative-window runner.
                "shard": shard_runtime_snapshot(),
            }
        )

    def _cmd_quit(self, attrs) -> str:
        """``quit``: shut the daemon down and close the channel."""
        self.daemon.shutdown()
        return "bye"

    @staticmethod
    def _addr_from(attrs: dict[str, str], default_host: str):
        host = attrs.get("host", default_host)
        if "port" in attrs:
            return (host, int(attrs["port"]))
        return host


class UnixControlServer:
    """Serves a :class:`ControlChannel` over a real UNIX domain socket.

    Line-oriented: one command per line, one reply line per command.
    Access control is the socket file's permissions, as in ldmsd.
    """

    def __init__(self, channel: ControlChannel, path: str):
        self.channel = channel
        self.path = path
        if os.path.exists(path):
            os.unlink(path)
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.bind(path)
        os.chmod(path, 0o600)  # owner-only, like ldmsd
        self.sock.listen(8)
        self._stop = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            threading.Thread(target=self._client, args=(conn,), daemon=True).start()

    def _client(self, conn: socket.socket) -> None:
        buf = b""
        try:
            while True:
                chunk = conn.recv(4096)
                if not chunk:
                    return
                buf += chunk
                while b"\n" in buf:
                    line, _, buf = buf.partition(b"\n")
                    if not line.strip():
                        continue
                    reply = self.channel.handle(line.decode("utf-8"))
                    conn.sendall(reply.encode("utf-8") + b"\n")
        except OSError:
            pass
        finally:
            conn.close()

    def close(self) -> None:
        self._stop = True
        try:
            self.sock.close()
        finally:
            if os.path.exists(self.path):
                os.unlink(self.path)
