"""LDMS core: metric sets, daemon, sampler/aggregator/store frameworks.

The public surface re-exported here is what a downstream user needs to
build a monitoring deployment:

>>> from repro.core import Ldmsd, MetricSet, MetricType
"""

from repro.core.metric import MetricType, MetricDesc
from repro.core.memory import Arena
from repro.core.metric_set import MetricSet, SetInfo
from repro.core.env import Env, RealEnv, SimEnv
from repro.core.sampler import SamplerPlugin, sampler_registry, register_sampler
from repro.core.store import StorePlugin, store_registry, register_store, StoreRecord
from repro.core.ldmsd import Ldmsd
from repro.core.aggregator import ProducerConfig, UpdaterState
from repro.core.control import ControlChannel, parse_command

__all__ = [
    "MetricType",
    "MetricDesc",
    "Arena",
    "MetricSet",
    "SetInfo",
    "Env",
    "RealEnv",
    "SimEnv",
    "SamplerPlugin",
    "sampler_registry",
    "register_sampler",
    "StorePlugin",
    "store_registry",
    "register_store",
    "StoreRecord",
    "Ldmsd",
    "ProducerConfig",
    "UpdaterState",
    "ControlChannel",
    "parse_command",
]
