"""Execution environments: real threads vs discrete-event simulation.

``ldmsd`` is written against this small interface so the identical
daemon logic runs

* on a real machine (``RealEnv``: a scheduler thread + ``heapq``, real
  wall clock, ``threading.ThreadPoolExecutor``-style workers), and
* inside the simulator (``SimEnv``: the :class:`repro.sim.Engine` clock,
  worker pools modelled as counted resources, and task execution that
  *advances simulated time* by a declared cost and charges that cost to
  a CPU core as OS noise).

The daemon is callback-driven; in RealEnv all callbacks are serialized
under a single daemon lock supplied by the environment, which keeps the
shared-state discipline identical in both modes.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable, Optional

from repro.sim.engine import Engine, Event
from repro.sim.resources import CpuCore, Resource
from repro.util.errors import SimulationError
from repro.util.timeutil import monotonic

__all__ = ["Env", "RealEnv", "SimEnv", "TaskHandle", "WorkerPool"]


class TaskHandle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("_cancel", "cancelled")

    def __init__(self, cancel: Callable[[], None]):
        self._cancel = cancel
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._cancel()


class WorkerPool:
    """Abstract worker pool (ldmsd worker / connection / flush threads)."""

    name: str
    size: int

    def submit(
        self,
        fn: Callable[[], Any],
        cost: float = 0.0,
        core: Optional[CpuCore] = None,
        tag: str = "ldmsd",
        on_start: Optional[Callable[[], Any]] = None,
    ) -> None:
        """Run ``fn`` on a pool worker.

        ``cost``/``core``/``tag`` are simulation annotations: the task
        occupies a worker for ``cost`` simulated seconds and records that
        busy time on ``core`` (for noise accounting).  RealEnv ignores
        them — real work has real cost.

        ``on_start`` fires when the worker is acquired, *before* the
        cost window; ``fn`` fires at its end.  ldmsd uses this split to
        open the sampling transaction at the start of the busy window so
        concurrent fetches see the consistent flag clear.
        """
        raise NotImplementedError


class _NullLock:
    """Reentrant no-op lock for single-threaded (simulated) execution."""

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def acquire(self) -> bool:  # pragma: no cover - API parity
        return True

    def release(self) -> None:  # pragma: no cover - API parity
        return None


class Env:
    """Scheduling environment interface."""

    def now(self) -> float:
        raise NotImplementedError

    def call_later(self, delay: float, fn: Callable[[], Any]) -> TaskHandle:
        raise NotImplementedError

    def make_pool(self, name: str, size: int) -> WorkerPool:
        raise NotImplementedError

    def make_lock(self):
        """A reentrant lock (real in RealEnv, no-op in SimEnv)."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Stop background machinery (RealEnv threads). Idempotent."""

    # -- convenience -------------------------------------------------------
    def call_every(
        self,
        interval: float,
        fn: Callable[[], Any],
        synchronous: bool = False,
        offset: float = 0.0,
        jitter_rng=None,
    ) -> TaskHandle:
        """Invoke ``fn`` periodically.

        With ``synchronous=True`` invocations are aligned to wall-clock
        multiples of ``interval`` plus ``offset`` (the paper's
        *synchronous* sampling: "an attempt to collect (or sample)
        relative to particular times as opposed to relative to an
        arbitrary start time", §IV-C).  Otherwise the period is relative
        to the start time.  ``jitter_rng``, if given, adds uniform jitter
        in [0, 1ms) to each asynchronous firing, modelling scheduler
        wakeup slop.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        state = {"handle": None, "stopped": False}

        def next_delay() -> float:
            if synchronous:
                now = self.now()
                target = (now - offset) // interval * interval + interval + offset
                return max(target - now, 0.0)
            d = interval
            if jitter_rng is not None:
                d += float(jitter_rng.uniform(0.0, 1e-3))
            return d

        def fire() -> None:
            if state["stopped"]:
                return
            state["handle"] = self.call_later(next_delay(), fire)
            fn()

        state["handle"] = self.call_later(next_delay(), fire)

        def cancel() -> None:
            state["stopped"] = True
            h = state["handle"]
            if h is not None:
                h.cancel()

        return TaskHandle(cancel)


# ---------------------------------------------------------------------------
# Real environment
# ---------------------------------------------------------------------------


class _RealPool(WorkerPool):
    """Fixed set of daemon worker threads fed from a queue."""

    def __init__(self, name: str, size: int):
        self.name = name
        self.size = size
        self._tasks: list[Callable[[], Any]] = []
        self._cv = threading.Condition()
        self._stop = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"{name}-{i}", daemon=True)
            for i in range(size)
        ]
        for t in self._threads:
            t.start()

    def submit(self, fn, cost: float = 0.0, core=None, tag: str = "ldmsd", on_start=None) -> None:
        def task() -> None:
            if on_start is not None:
                on_start()
            fn()

        with self._cv:
            if self._stop:
                return
            self._tasks.append(task)
            self._cv.notify()

    def _worker(self) -> None:
        while True:
            with self._cv:
                while not self._tasks and not self._stop:
                    self._cv.wait()
                if self._stop and not self._tasks:
                    return
                fn = self._tasks.pop(0)
            try:
                fn()
            except Exception:  # pragma: no cover - worker survival
                import traceback

                traceback.print_exc()

    def shutdown(self) -> None:
        with self._cv:
            self._stop = True
            self._cv.notify_all()
        for t in self._threads:
            t.join(timeout=2.0)


class RealEnv(Env):
    """Wall-clock environment: one timer thread + worker pools."""

    def __init__(self):
        self._heap: list[tuple[float, int, Callable[[], Any], TaskHandle]] = []
        self._seq = itertools.count()
        self._cv = threading.Condition()
        self._stop = False
        self._pools: list[_RealPool] = []
        self._epoch = monotonic()
        self._timer = threading.Thread(target=self._run, name="env-timer", daemon=True)
        self._timer.start()

    def now(self) -> float:
        return monotonic() - self._epoch

    def call_later(self, delay: float, fn: Callable[[], Any]) -> TaskHandle:
        handle = TaskHandle(lambda: None)  # cancellation checked via flag
        with self._cv:
            heapq.heappush(self._heap, (self.now() + max(delay, 0.0), next(self._seq), fn, handle))
            self._cv.notify()
        return handle

    def make_pool(self, name: str, size: int) -> WorkerPool:
        pool = _RealPool(name, size)
        self._pools.append(pool)
        return pool

    def make_lock(self):
        return threading.RLock()

    def _run(self) -> None:
        while True:
            with self._cv:
                if self._stop:
                    return
                if not self._heap:
                    self._cv.wait(timeout=0.5)
                    continue
                when, _seq, fn, handle = self._heap[0]
                delay = when - self.now()
                if delay > 0:
                    self._cv.wait(timeout=min(delay, 0.5))
                    continue
                heapq.heappop(self._heap)
            if not handle.cancelled:
                try:
                    fn()
                except Exception:  # pragma: no cover - timer survival
                    import traceback

                    traceback.print_exc()

    def shutdown(self) -> None:
        with self._cv:
            self._stop = True
            self._cv.notify_all()
        self._timer.join(timeout=2.0)
        for p in self._pools:
            p.shutdown()


# ---------------------------------------------------------------------------
# Simulated environment
# ---------------------------------------------------------------------------


class _SimPool(WorkerPool):
    """Worker pool as a counted DES resource.

    A submitted task waits for a free worker, holds it for ``cost``
    simulated seconds, records the busy time as noise on the given core,
    then runs its callback.
    """

    def __init__(self, engine: Engine, name: str, size: int):
        self.engine = engine
        self.name = name
        self.size = size
        self.resource = Resource(engine, size)
        self.busy_time = 0.0
        self.tasks_run = 0

    def submit(self, fn, cost: float = 0.0, core=None, tag: str = "ldmsd", on_start=None) -> None:
        req = self.resource.request()

        def granted(_ev: Event) -> None:
            start = self.engine.now
            if on_start is not None:
                on_start()
            if core is not None and cost > 0.0:
                core.add_noise(start, cost, tag)
            self.busy_time += cost
            self.tasks_run += 1

            def finish() -> None:
                try:
                    fn()
                finally:
                    self.resource.release(req)

            if cost > 0.0:
                self.engine.call_later(cost, finish)
            else:
                finish()

        if req.processed:
            granted(req)
        else:
            req.callbacks.append(granted)


class SimEnv(Env):
    """Environment bound to a simulation engine."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.pools: list[_SimPool] = []

    def now(self) -> float:
        return self.engine.now

    def call_later(self, delay: float, fn: Callable[[], Any]) -> TaskHandle:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        ev = self.engine.call_later(delay, fn)
        return TaskHandle(lambda: Engine.cancel(ev))

    def make_pool(self, name: str, size: int) -> WorkerPool:
        pool = _SimPool(self.engine, name, size)
        self.pools.append(pool)
        return pool

    def make_lock(self):
        return _NullLock()
