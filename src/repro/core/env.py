"""Execution environments: real threads vs discrete-event simulation.

``ldmsd`` is written against this small interface so the identical
daemon logic runs

* on a real machine (``RealEnv``: a scheduler thread + ``heapq``, real
  wall clock, ``threading.ThreadPoolExecutor``-style workers), and
* inside the simulator (``SimEnv``: the :class:`repro.sim.Engine` clock,
  worker pools modelled as counted resources, and task execution that
  *advances simulated time* by a declared cost and charges that cost to
  a CPU core as OS noise).

The daemon is callback-driven; in RealEnv all callbacks are serialized
under a single daemon lock supplied by the environment, which keeps the
shared-state discipline identical in both modes.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable, Optional

from repro.sim.engine import Engine
from repro.sim.resources import CpuCore, Resource
from repro.util.errors import SimulationError
from repro.util.timeutil import monotonic

__all__ = ["Env", "RealEnv", "SimEnv", "TaskHandle", "WorkerPool"]


class TaskHandle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("_cancel", "cancelled")

    def __init__(self, cancel: Callable[[], None]):
        self._cancel = cancel
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._cancel()


class WorkerPool:
    """Abstract worker pool (ldmsd worker / connection / flush threads)."""

    name: str
    size: int

    def submit(
        self,
        fn: Callable[[], Any],
        cost: float = 0.0,
        core: Optional[CpuCore] = None,
        tag: str = "ldmsd",
        on_start: Optional[Callable[[], Any]] = None,
    ) -> None:
        """Run ``fn`` on a pool worker.

        ``cost``/``core``/``tag`` are simulation annotations: the task
        occupies a worker for ``cost`` simulated seconds and records that
        busy time on ``core`` (for noise accounting).  ``cost`` may be a
        zero-argument callable, evaluated when the worker is acquired
        (batched tasks charge for the work they seal at that moment).
        RealEnv ignores them — real work has real cost.

        ``on_start`` fires when the worker is acquired, *before* the
        cost window; ``fn`` fires at its end.  ldmsd uses this split to
        open the sampling transaction at the start of the busy window so
        concurrent fetches see the consistent flag clear.
        """
        raise NotImplementedError


class _NullLock:
    """Reentrant no-op lock for single-threaded (simulated) execution."""

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def acquire(self) -> bool:  # pragma: no cover - API parity
        return True

    def release(self) -> None:  # pragma: no cover - API parity
        return None


class Env:
    """Scheduling environment interface."""

    def now(self) -> float:
        raise NotImplementedError

    def call_later(self, delay: float, fn: Callable[[], Any]) -> TaskHandle:
        raise NotImplementedError

    def make_pool(self, name: str, size: int) -> WorkerPool:
        raise NotImplementedError

    def make_lock(self):
        """A reentrant lock (real in RealEnv, no-op in SimEnv)."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Stop background machinery (RealEnv threads). Idempotent."""

    def timer_fastpath_ticks(self) -> int:
        """Ticks delivered through the zero-allocation periodic path."""
        return 0

    # -- convenience -------------------------------------------------------
    def call_every(
        self,
        interval: float,
        fn: Callable[[], Any],
        synchronous: bool = False,
        offset: float = 0.0,
        jitter_rng=None,
    ) -> TaskHandle:
        """Invoke ``fn`` periodically.

        With ``synchronous=True`` invocations are aligned to wall-clock
        multiples of ``interval`` plus ``offset`` (the paper's
        *synchronous* sampling: "an attempt to collect (or sample)
        relative to particular times as opposed to relative to an
        arbitrary start time", §IV-C).  Otherwise the period is relative
        to the start time.  ``jitter_rng``, if given, adds uniform jitter
        in [0, 1ms) to each asynchronous firing, modelling scheduler
        wakeup slop.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        state = {"handle": None, "stopped": False}

        def next_delay() -> float:
            if synchronous:
                now = self.now()
                target = (now - offset) // interval * interval + interval + offset
                return max(target - now, 0.0)
            d = interval
            if jitter_rng is not None:
                d += float(jitter_rng.uniform(0.0, 1e-3))
            return d

        def fire() -> None:
            if state["stopped"]:
                return
            state["handle"] = self.call_later(next_delay(), fire)
            fn()

        state["handle"] = self.call_later(next_delay(), fire)

        def cancel() -> None:
            state["stopped"] = True
            h = state["handle"]
            if h is not None:
                h.cancel()

        return TaskHandle(cancel)


# ---------------------------------------------------------------------------
# Real environment
# ---------------------------------------------------------------------------


class _RealPool(WorkerPool):
    """Fixed set of daemon worker threads fed from a queue."""

    def __init__(self, name: str, size: int):
        self.name = name
        self.size = size
        self._tasks: list[Callable[[], Any]] = []
        self._cv = threading.Condition()
        self._stop = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"{name}-{i}", daemon=True)
            for i in range(size)
        ]
        for t in self._threads:
            t.start()

    def submit(self, fn, cost: float = 0.0, core=None, tag: str = "ldmsd", on_start=None) -> None:
        def task() -> None:
            if on_start is not None:
                on_start()
            fn()

        with self._cv:
            if self._stop:
                return
            self._tasks.append(task)
            self._cv.notify()

    def _worker(self) -> None:
        while True:
            with self._cv:
                while not self._tasks and not self._stop:
                    self._cv.wait()
                if self._stop and not self._tasks:
                    return
                fn = self._tasks.pop(0)
            try:
                fn()
            except Exception:  # pragma: no cover - worker survival
                import traceback

                traceback.print_exc()

    def shutdown(self) -> None:
        with self._cv:
            self._stop = True
            self._cv.notify_all()
        for t in self._threads:
            t.join(timeout=2.0)


class RealEnv(Env):
    """Wall-clock environment: one timer thread + worker pools."""

    #: cancelled-entry count that arms a heap compaction pass
    _COMPACT_MIN = 64

    def __init__(self):
        self._heap: list[tuple[float, int, Callable[[], Any], TaskHandle]] = []
        self._seq = itertools.count()
        self._cv = threading.Condition()
        self._stop = False
        self._pools: list[_RealPool] = []
        self._epoch = monotonic()
        self._ncancelled = 0  # cancelled entries still sitting in the heap
        self._timer = threading.Thread(target=self._run, name="env-timer", daemon=True)
        self._timer.start()

    def now(self) -> float:
        return monotonic() - self._epoch

    def call_later(self, delay: float, fn: Callable[[], Any]) -> TaskHandle:
        handle = TaskHandle(self._note_cancel)  # cancellation checked via flag
        with self._cv:
            heapq.heappush(self._heap, (self.now() + max(delay, 0.0), next(self._seq), fn, handle))
            self._cv.notify()
        return handle

    def _note_cancel(self) -> None:
        """Lazy drop: count the dead heap entry; compact once cancelled
        entries dominate, so churning producers can't grow the heap
        unboundedly while their timers wait out long deadlines."""
        with self._cv:
            self._ncancelled += 1
            if (self._ncancelled >= self._COMPACT_MIN
                    and self._ncancelled * 2 >= len(self._heap)):
                self._heap = [e for e in self._heap if not e[3].cancelled]
                heapq.heapify(self._heap)
                self._ncancelled = 0

    def make_pool(self, name: str, size: int) -> WorkerPool:
        pool = _RealPool(name, size)
        self._pools.append(pool)
        return pool

    def make_lock(self):
        return threading.RLock()

    def _run(self) -> None:
        while True:
            with self._cv:
                if self._stop:
                    return
                if not self._heap:
                    self._cv.wait(timeout=0.5)
                    continue
                when, _seq, fn, handle = self._heap[0]
                delay = when - self.now()
                if delay > 0:
                    self._cv.wait(timeout=min(delay, 0.5))
                    continue
                heapq.heappop(self._heap)
                if handle.cancelled and self._ncancelled > 0:
                    self._ncancelled -= 1
            if not handle.cancelled:
                try:
                    fn()
                except Exception:  # pragma: no cover - timer survival
                    import traceback

                    traceback.print_exc()

    def shutdown(self) -> None:
        with self._cv:
            self._stop = True
            self._cv.notify_all()
        self._timer.join(timeout=2.0)
        for p in self._pools:
            p.shutdown()


# ---------------------------------------------------------------------------
# Simulated environment
# ---------------------------------------------------------------------------


class _PoolTask:
    """One submitted pool task: slotted two-phase grant→finish state.

    Replaces the Event + two closures the old path allocated per task.
    Phase 1 (grant) fires one heap entry after submit — exactly where
    the granted Resource event used to land, so task interleaving is
    unchanged — opens the busy window (``on_start``), charges core
    noise, and schedules phase 2 at the cost horizon.  Phase 2 runs the
    callback and releases the worker.
    """

    __slots__ = ("pool", "fn", "cost", "core", "tag", "on_start", "_started")

    def __init__(self, pool: "_SimPool", fn, cost, core, tag, on_start):
        self.pool = pool
        self.fn = fn
        self.cost = cost
        self.core = core
        self.tag = tag
        self.on_start = on_start
        self._started = False

    def _granted(self, _ev) -> None:  # slow path: queued Resource grant
        self._fire()

    def _fire(self) -> None:
        pool = self.pool
        if self._started:
            try:
                self.fn()
            finally:
                pool.resource.release()
            return
        self._started = True
        cost = self.cost
        if callable(cost):
            # Lazy cost: evaluated when the worker is acquired, so a
            # batched task can charge for exactly the work it seals off
            # at that moment.
            cost = cost()
        if self.on_start is not None:
            self.on_start()
        if self.core is not None and cost > 0.0:
            self.core.add_noise(pool.engine.now, cost, self.tag)
        pool.busy_time += cost
        pool.tasks_run += 1
        if cost > 0.0:
            pool.engine._push(self, cost)
        else:
            try:
                self.fn()
            finally:
                pool.resource.release()


class _SimPool(WorkerPool):
    """Worker pool as a counted DES resource.

    A submitted task waits for a free worker, holds it for ``cost``
    simulated seconds, records the busy time as noise on the given core,
    then runs its callback.
    """

    def __init__(self, engine: Engine, name: str, size: int):
        self.engine = engine
        self.name = name
        self.size = size
        self.resource = Resource(engine, size)
        self.busy_time = 0.0
        self.tasks_run = 0

    def submit(self, fn, cost: float = 0.0, core=None, tag: str = "ldmsd", on_start=None) -> None:
        task = _PoolTask(self, fn, cost, core, tag, on_start)
        if self.resource.try_acquire():
            if not callable(cost) and cost > 0.0:
                # Free worker, fixed positive cost: run phase 1 (grant)
                # inline.  The grant only opens the busy window and
                # charges the core — the callback still fires at the
                # cost horizon — so the zero-delay grant event is pure
                # heap traffic.  Lazy (callable) costs keep the event,
                # because they must price work sealed at grant time;
                # zero-cost tasks keep it so ``fn`` never reenters the
                # submitter's frame.
                task._started = True
                if on_start is not None:
                    on_start()
                if core is not None:
                    core.add_noise(self.engine.now, cost, tag)
                self.busy_time += cost
                self.tasks_run += 1
                self.engine._push(task, cost)
            else:
                # Skip the Resource Event entirely, but still land the
                # grant one heap entry later (same ordering as a granted
                # request event).
                self.engine._push(task, 0.0)
        else:
            self.resource.request().callbacks.append(task._granted)


class SimEnv(Env):
    """Environment bound to a simulation engine."""

    def __init__(self, engine: Engine, arena: bool | None = None):
        self.engine = engine
        self.pools: list[_SimPool] = []
        # Columnar data plane (REPRO_ARENA): one shared set-arena pool
        # and sampler-cohort scheduler per environment.  None when
        # reverted, which every consumer treats as "scalar path".
        from repro.core.set_arena import CohortScheduler, SetArenaPool, arena_default

        if arena_default() if arena is None else bool(arena):
            self.set_arena_pool: Optional[SetArenaPool] = SetArenaPool()
            self.cohort_scheduler: Optional[CohortScheduler] = CohortScheduler(engine)
        else:
            self.set_arena_pool = None
            self.cohort_scheduler = None

    def now(self) -> float:
        return self.engine._now  # skip the property hop: hottest call in a sweep

    def call_later(self, delay: float, fn: Callable[[], Any]) -> TaskHandle:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # The engine timer duck-types TaskHandle (cancel()/cancelled);
        # returning it directly saves two allocations per scheduling.
        return self.engine.call_later(delay, fn)

    def call_every(self, interval: float, fn: Callable[[], Any],
                   synchronous: bool = False, offset: float = 0.0,
                   jitter_rng=None) -> TaskHandle:
        # Zero-allocation periodic path: one self-rescheduling timer
        # object instead of a Timeout + closure pair per tick.  Delay
        # arithmetic and jitter draws match Env.call_every exactly.
        return self.engine.schedule_periodic(interval, fn, synchronous,
                                             offset, jitter_rng)

    def timer_fastpath_ticks(self) -> int:
        return self.engine.timer_fastpath_ticks

    def make_pool(self, name: str, size: int) -> WorkerPool:
        pool = _SimPool(self.engine, name, size)
        self.pools.append(pool)
        return pool

    def make_lock(self):
        return _NullLock()
