"""Runtime sanitizer for the metric-set memory discipline (§IV-B).

The paper's consumers detect torn and stale data with three header
fields — DGN, consistent flag, MGN — which only works if every producer
write honors the discipline: values change only inside a transaction,
every value write bumps the DGN, and the metadata chunk is immutable
after publication.  The ``chunk-discipline`` lint rule bans raw buffer
writes statically; this module is the dynamic half, in the spirit of
ASan shadow memory.

With ``REPRO_SANITIZE`` set, every :class:`~repro.core.metric_set.
MetricSet` keeps a shadow record — CRC of the data chunk's payload
(bytes beyond the 24-byte header), CRC of the metadata chunk, and the
last sanctioned DGN.  The sanctioned mutators re-commit the shadow;
checkpoints on the read/publish paths recompute and compare:

* **torn write** — payload bytes changed while the DGN did not: someone
  wrote values behind the API's back;
* **DGN regression** — the DGN moved backwards (stale data would be
  accepted as fresh downstream);
* **metadata mutation** — the metadata chunk changed after
  construction, invalidating every consumer's cached layout;
* **inconsistent read** — a mirror's values were decoded while its
  consistent flag was clear (the §IV-B check the consumer must make);
* **inconsistent apply** — a fetched chunk whose consistent flag is
  clear was installed into a mirror instead of being discarded.

Modes (``REPRO_SANITIZE=...``): ``1``/``raise`` raises
:class:`SanitizerError` at the checkpoint (tests, CI); ``count``/``obs``
increments ``sanitizer.<kind>`` plus the aggregate
``sanitizer.violations`` on every registered telemetry registry
(``ldmsd_self`` exports the aggregate), letting production runs surface
corruption without dying.  Unset/``0``/``off`` disables everything:
sets carry no shadow and the hot path pays one ``is None`` branch.
"""

from __future__ import annotations

import os
import weakref
import zlib
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metric_set import MetricSet
    from repro.obs.registry import Telemetry

__all__ = [
    "SanitizerError",
    "VIOLATION_KINDS",
    "configure",
    "enabled",
    "mode",
    "register_registry",
]

VIOLATION_KINDS = (
    "torn_write",
    "dgn_regression",
    "meta_mutation",
    "inconsistent_read",
    "inconsistent_apply",
)

#: Data-chunk header size; the payload CRC covers everything after it,
#: so sanctioned header updates (DGN/flag/timestamp) never perturb it.
_HDR = 24


class SanitizerError(Exception):
    """A metric-set memory-discipline violation (REPRO_SANITIZE=raise)."""


def _parse_mode(value: str) -> str:
    v = value.strip().lower()
    if v in ("", "0", "off", "false", "no"):
        return "off"
    if v in ("1", "raise", "true", "yes", "on"):
        return "raise"
    if v in ("count", "obs"):
        return "count"
    raise ValueError(
        f"REPRO_SANITIZE={value!r}: expected 0/1/raise/count"
    )


_mode: str = _parse_mode(os.environ.get("REPRO_SANITIZE", ""))

#: The first violation of a run freezes the fleet's flight recorders
#: into a postmortem dump (one dump, not one per violation — count mode
#: can fire thousands of times).  Reset by :func:`configure`.
_postmortem_fired = False

#: Telemetry registries that receive violation counts in count mode.
#: Weak references: a daemon's registry dies with the daemon.
_registries: list = []


def mode() -> str:
    """Current mode: ``off``, ``raise``, or ``count``."""
    return _mode


def enabled() -> bool:
    return _mode != "off"


def configure(new_mode: str) -> str:
    """Set the sanitizer mode (tests); returns the previous mode.

    Only sets constructed while the sanitizer is enabled carry a
    shadow, so flip the mode before building the sets under test.
    """
    global _mode, _postmortem_fired
    prev = _mode
    _mode = _parse_mode(new_mode)
    _postmortem_fired = False
    return prev


def register_registry(telemetry: "Telemetry") -> None:
    """Count future violations into ``telemetry`` (count mode).

    Idempotent per registry; registries are held weakly.
    """
    _registries[:] = [r for r in _registries if r() is not None]
    if any(r() is telemetry for r in _registries):
        return
    _registries.append(weakref.ref(telemetry))


def _violation(kind: str, message: str) -> None:
    global _postmortem_fired
    if not _postmortem_fired:
        # Cold path by definition; the import stays local so the
        # sanitizer never costs obs machinery when nothing violates.
        _postmortem_fired = True
        from repro.obs import flight as _flight

        daemons = _flight.registered_daemons()
        now = daemons[0].env.now() if daemons else 0.0
        for d in daemons:
            d.flight.record(now, "sanitize", kind)
        _flight.postmortem(f"sanitizer:{kind}", now)
    if _mode == "raise":
        raise SanitizerError(f"[{kind}] {message}")
    if _mode == "count":
        for ref in _registries:
            reg = ref()
            if reg is not None:
                reg.counter(f"sanitizer.{kind}").inc()
                reg.counter("sanitizer.violations").inc()


class Shadow:
    """Per-set shadow state; exists only while the sanitizer is on."""

    __slots__ = ("payload_crc", "meta_crc", "dgn", "is_mirror")

    def __init__(self) -> None:
        self.payload_crc = 0
        self.meta_crc = 0
        self.dgn = 0
        self.is_mirror = False


def attach(mset: "MetricSet") -> Optional[Shadow]:
    """Give a freshly constructed set a shadow (None when disabled)."""
    if _mode == "off":
        return None
    shadow = Shadow()
    shadow.payload_crc = zlib.crc32(mset._data[_HDR:])
    shadow.meta_crc = zlib.crc32(mset._meta)
    shadow.dgn = mset._dgn
    return shadow


def commit(mset: "MetricSet") -> None:
    """Re-baseline after a sanctioned data-chunk mutation."""
    shadow = mset._shadow
    shadow.payload_crc = zlib.crc32(mset._data[_HDR:])
    shadow.dgn = mset._dgn


def check(mset: "MetricSet", where: str) -> None:
    """Checkpoint: verify the chunks still match the shadow."""
    shadow = mset._shadow
    if zlib.crc32(mset._meta) != shadow.meta_crc:
        _violation(
            "meta_mutation",
            f"set {mset.name!r}: metadata chunk mutated after publication "
            f"(detected at {where}); consumers' cached layouts are invalid",
        )
    dgn = mset.dgn
    if dgn < shadow.dgn:
        _violation(
            "dgn_regression",
            f"set {mset.name!r}: DGN moved backwards "
            f"({shadow.dgn} -> {dgn}, detected at {where})",
        )
    if zlib.crc32(mset._data[_HDR:]) != shadow.payload_crc and dgn == shadow.dgn:
        _violation(
            "torn_write",
            f"set {mset.name!r}: data payload changed without a DGN bump "
            f"(detected at {where}) — a write bypassed the MetricSet API",
        )


def check_read(mset: "MetricSet") -> None:
    """Mirror value decode: the §IV-B consistent-flag check."""
    shadow = mset._shadow
    if shadow.is_mirror and not mset.is_consistent:
        _violation(
            "inconsistent_read",
            f"set {mset.name!r}: values decoded from a mirror whose "
            f"consistent flag is clear — the sample must be discarded",
        )


def check_apply(mset: "MetricSet", dgn: int, consistent: bool) -> None:
    """Mirror install: fetched chunks must be consistent and fresh."""
    if not consistent:
        _violation(
            "inconsistent_apply",
            f"set {mset.name!r}: installing a fetched data chunk whose "
            f"consistent flag is clear (a torn RDMA-style read)",
        )
    shadow = mset._shadow
    if dgn < shadow.dgn:
        _violation(
            "dgn_regression",
            f"set {mset.name!r}: applying data with DGN {dgn} over newer "
            f"DGN {shadow.dgn}",
        )
