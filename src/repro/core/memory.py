"""Arena memory manager for metric-set storage.

The paper (§IV-D): "A custom memory manager is employed to manage memory
allocation."  ldmsd pre-allocates a fixed region at start (the ``-m``
option) and carves metric-set metadata and data chunks out of it; an
aggregator sizes its region for every set it collects.

This implementation is a first-fit free-list allocator over a single
``bytearray``.  It exists for behavioural fidelity — daemon memory
footprint is a *measured quantity* in the reproduction, and set creation
must fail when the configured region is exhausted, as it does in ldmsd.
"""

from __future__ import annotations

from repro.util.errors import OutOfMemory

__all__ = ["Arena"]

_ALIGN = 8


def _align(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


class Arena:
    """First-fit allocator over a contiguous preallocated buffer.

    >>> a = Arena(1024)
    >>> off = a.alloc(100)
    >>> mv = a.view(off, 100)
    >>> a.free(off)
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("arena size must be positive")
        self.size = _align(size)
        self.buf = bytearray(self.size)
        # Free list: sorted list of (offset, length) holes.
        self._free: list[tuple[int, int]] = [(0, self.size)]
        # Live allocations: offset -> length (aligned).
        self._live: dict[int, int] = {}
        self._used = 0  # incremental live-byte total (alloc is hot)
        self.peak_used = 0

    @property
    def used(self) -> int:
        return self._used

    @property
    def available(self) -> int:
        return self.size - self.used

    @property
    def n_allocs(self) -> int:
        return len(self._live)

    def alloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` (rounded up to 8-byte alignment); return offset."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        need = _align(nbytes)
        for i, (off, length) in enumerate(self._free):
            if length >= need:
                if length == need:
                    del self._free[i]
                else:
                    self._free[i] = (off + need, length - need)
                self._live[off] = need
                self._used += need
                if self._used > self.peak_used:
                    self.peak_used = self._used
                return off
        raise OutOfMemory(
            f"arena exhausted: need {need}B, {self.available}B free "
            f"(fragmented into {len(self._free)} holes) of {self.size}B total"
        )

    def free(self, offset: int) -> None:
        """Return an allocation to the free list, coalescing neighbours."""
        try:
            length = self._live.pop(offset)
        except KeyError:
            raise ValueError(f"free of unallocated offset {offset}") from None
        self._used -= length
        # Insert hole keeping the list sorted by offset, then coalesce.
        self._free.append((offset, length))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for off, ln in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                prev_off, prev_ln = merged[-1]
                merged[-1] = (prev_off, prev_ln + ln)
            else:
                merged.append((off, ln))
        self._free = merged
        # Hygiene: zero the region so stale data never leaks into new sets.
        self.buf[offset : offset + length] = bytes(length)

    def view(self, offset: int, nbytes: int) -> memoryview:
        """A writable view of an allocated region."""
        length = self._live.get(offset)
        if length is None:
            raise ValueError(f"view of unallocated offset {offset}")
        if nbytes > length:
            raise ValueError(f"view of {nbytes}B exceeds allocation of {length}B")
        return memoryview(self.buf)[offset : offset + nbytes]
