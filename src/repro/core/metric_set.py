"""Metric sets: the unit of collection, transport, and storage.

A metric set is two contiguous chunks of memory (paper §IV-B):

* **metadata chunk** — describes the elements of the data chunk (name,
  user-defined component id, value type, offset of the element from the
  beginning of the data chunk) plus a *metadata generation number* (MGN)
  which changes whenever the metadata changes.

* **data chunk** — the sampled values, plus the MGN, a *data generation
  number* (DGN) incremented as each element is updated, a *consistent*
  flag telling a consumer whether all values came from the same sampling
  event, and the sample timestamp.

Only the data chunk moves on an update; consumers keep a cached copy of
the metadata from the initial lookup and use the MGN to detect staleness
and the DGN to discriminate new data from old.  The data chunk is
roughly 10% of the total set size in the paper's deployments — a ratio
this implementation reproduces (64-byte names + descriptor overhead in
metadata vs 8-byte values in data).

Schema compilation
------------------

A set's layout is frozen at :meth:`MetricSet.create` / :meth:`from_meta`
time — that is the whole point of the MGN.  The constructor therefore
compiles the layout once into a :class:`_CompiledSchema` (cached by
layout, shared across sets): a single whole-row :class:`struct.Struct`
with explicit pad bytes matching the natural-alignment layout, cached
per-metric ``Struct`` objects, and the per-metric clamp callables.  The
hot producer path (:meth:`set_all` / :meth:`set_values`) is then one
``pack_into`` plus one DGN write, and the hot consumer path
(:meth:`values` / :meth:`values_tuple` / :meth:`values_array`) is one
``unpack_from`` — the paper's ~1.3 µs/metric collect cost (§IV-E)
depends on exactly this "pay layout cost once" property.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core import sanitize
from repro.core.memory import Arena, OutOfMemory
from repro.core.metric import MetricDesc, MetricType
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.set_arena import SetArenaPool

__all__ = ["MetricSet", "SetInfo", "SET_NAME_LEN", "SCHEMA_NAME_LEN"]

SET_NAME_LEN = 128
SCHEMA_NAME_LEN = 64

_META_HDR_FMT = f"<4sIIII{SET_NAME_LEN}s{SCHEMA_NAME_LEN}s"
_META_HDR_SIZE = struct.calcsize(_META_HDR_FMT)
_META_MAGIC = b"LDMS"

# data header: MGN u32, DGN u64, consistent u8, 3 pad, timestamp f64
_DATA_HDR_FMT = "<IQB3xd"
_DATA_HDR_SIZE = struct.calcsize(_DATA_HDR_FMT)

_DGN_OFF = 4
_CONSISTENT_OFF = 12
_TS_OFF = 16

_U64_MASK = 0xFFFFFFFFFFFFFFFF

_STRUCT_Q = struct.Struct("<Q")
_STRUCT_D = struct.Struct("<d")
_STRUCT_DATA_HDR = struct.Struct(_DATA_HDR_FMT)
# Leading (mgn, dgn, consistent) of a data chunk, for peeking at raw
# fetches without installing them.
_STRUCT_DATA_PEEK = struct.Struct("<IQB")

#: One shared Struct per scalar type code.
_SCALAR_STRUCTS = {t.struct_code: struct.Struct("<" + t.struct_code) for t in MetricType}

_NUMPY_CODE = {
    MetricType.U8: "u1",
    MetricType.S8: "i1",
    MetricType.U16: "u2",
    MetricType.S16: "i2",
    MetricType.U32: "u4",
    MetricType.S32: "i4",
    MetricType.U64: "u8",
    MetricType.S64: "i8",
    MetricType.F32: "f4",
    MetricType.F64: "f8",
}


class SchemaMismatch(ReproError):
    """The data chunk's MGN does not match the cached metadata's MGN."""


class _CompiledSchema:
    """Per-layout artifacts compiled once and reused on every sample."""

    __slots__ = (
        "row_struct",
        "metric_structs",
        "offsets",
        "clamps",
        "mtypes",
        "array_dtype",
        "first_offset",
        "mixed_dtype",
    )


#: layout key -> _CompiledSchema.  Schemas are few in any deployment;
#: the cap only guards against pathological churn (e.g. fuzz tests).
_SCHEMA_CACHE: dict[tuple, _CompiledSchema] = {}
_SCHEMA_CACHE_MAX = 1024


def _compile_schema(descs: list[MetricDesc], data_size: int) -> _CompiledSchema:
    key = (data_size, tuple((int(d.mtype), d.data_offset) for d in descs))
    cs = _SCHEMA_CACHE.get(key)
    if cs is not None:
        return cs
    cs = _CompiledSchema()
    cs.offsets = tuple(d.data_offset for d in descs)
    cs.mtypes = tuple(d.mtype for d in descs)
    cs.clamps = tuple(d.mtype.clamp for d in descs)
    cs.metric_structs = tuple(_SCALAR_STRUCTS[d.mtype.struct_code] for d in descs)
    cs.first_offset = cs.offsets[0] if descs else _DATA_HDR_SIZE

    # Whole-row Struct with explicit pad bytes ("4x") for the alignment
    # holes.  Only well-formed layouts compile: offsets strictly
    # increasing in descriptor order, starting at/after the data header,
    # no overlap.  create() always produces such a layout; a mirror of
    # foreign metadata might not, and falls back to per-metric access.
    fmt = ["<"]
    cur = _DATA_HDR_SIZE
    ok = True
    for d in descs:
        gap = d.data_offset - cur
        if gap < 0:
            ok = False
            break
        if gap:
            fmt.append(f"{gap}x")
        fmt.append(d.mtype.struct_code)
        cur = d.data_offset + d.mtype.size
    cs.row_struct = struct.Struct("".join(fmt)) if ok and cur <= data_size else None

    # Mixed-layout values_array target dtype, resolved lazily on first
    # use (numpy promotion over the column types, computed once).
    cs.mixed_dtype = None

    # Homogeneous contiguous layouts additionally decode as one numpy
    # frombuffer (the common all-U64 case: meminfo, lustre, bw, ...).
    cs.array_dtype = None
    if cs.row_struct is not None and descs:
        t0 = descs[0].mtype
        if all(t is t0 for t in cs.mtypes) and all(
            off == cs.first_offset + i * t0.size for i, off in enumerate(cs.offsets)
        ):
            cs.array_dtype = "<" + _NUMPY_CODE[t0]

    if len(_SCHEMA_CACHE) >= _SCHEMA_CACHE_MAX:
        _SCHEMA_CACHE.clear()
    _SCHEMA_CACHE[key] = cs
    return cs


@dataclass(frozen=True)
class SetInfo:
    """Summary of a set as reported by the directory protocol."""

    name: str
    schema: str
    card: int
    meta_size: int
    data_size: int

    @property
    def total_size(self) -> int:
        return self.meta_size + self.data_size


class MetricSet:
    """A typed, fixed-layout record of metric values.

    Producer side (sampler plugins)::

        s = MetricSet.create("node1/meminfo", "meminfo",
                             [("Active", MetricType.U64, 1),
                              ("MemFree", MetricType.U64, 1)], arena=arena)
        s.begin_transaction()
        s.set_value("Active", 12345)
        s.end_transaction(timestamp=now)

    Consumer side (aggregators)::

        mirror = MetricSet.from_meta(s.meta_bytes(), arena=agg_arena)
        mirror.apply_data(s.data_bytes())
        mirror.get("Active")
    """

    def __init__(
        self,
        name: str,
        schema: str,
        descs: list[MetricDesc],
        arena: Arena,
        mgn: int,
        data_size: int,
        meta_src: Optional[bytes] = None,
        pool: Optional["SetArenaPool"] = None,
    ):
        self.name = name
        self.schema = schema
        self.descs = descs
        self.arena = arena
        self.mgn = mgn
        self._index = {d.name: i for i, d in enumerate(descs)}
        if len(self._index) != len(descs):
            raise ValueError(f"duplicate metric names in set {name!r}")

        self.meta_size = _META_HDR_SIZE + len(descs) * MetricDesc.WIRE_SIZE
        self.data_size = data_size

        self._compiled = _compile_schema(descs, data_size)
        # Record-field tuples the store pipeline reuses on every sample.
        self._names = tuple(d.name for d in descs)
        self._comp_ids = tuple(d.component_id for d in descs)
        # Python-int DGN shadow: producers bump this instead of
        # unpack/repacking 8 bytes from the data chunk per update.
        self._dgn = 0

        self._meta_off = arena.alloc(self.meta_size)
        try:
            self._data_off = arena.alloc(self.data_size)
        except (OutOfMemory, ValueError):
            # Data chunk failed after the metadata chunk succeeded:
            # release the metadata chunk so a half-built set never
            # leaks arena space, then let the caller count the failure.
            arena.free(self._meta_off)
            raise
        self._meta = arena.view(self._meta_off, self.meta_size)
        if pool is not None:
            # Columnar backing (REPRO_ARENA): the data chunk is a row of
            # a shared per-layout numpy block, so population-wide sweeps
            # can touch every same-schema set in one vectorized op.  The
            # daemon Arena reservation above still stands — footprint
            # accounting (used/peak/OOM) is identical either way — but
            # the reserved region goes unused while the row backs _data.
            self._ab, self._arow = pool.acquire_row(self._compiled, data_size)
            self._data = memoryview(self._ab.block[self._arow])
        else:
            self._ab = None
            self._arow = -1
            self._data = arena.view(self._data_off, self.data_size)
        self._in_transaction = False
        self._deleted = False

        # Serialize metadata into the metadata chunk.  A mirror already
        # holds the wire-format chunk it was built from, so copying it
        # wholesale beats re-packing the header + every descriptor (the
        # aggregator builds one mirror per connected sampler).
        if meta_src is not None:
            self._meta[:] = meta_src
        else:
            struct.pack_into(
                _META_HDR_FMT,
                self._meta,
                0,
                _META_MAGIC,
                self.meta_size,
                self.data_size,
                len(descs),
                mgn,
                name.encode("utf-8"),
                schema.encode("utf-8"),
            )
            pos = _META_HDR_SIZE
            for d in descs:
                self._meta[pos : pos + MetricDesc.WIRE_SIZE] = d.pack()
                pos += MetricDesc.WIRE_SIZE
        # Data header: MGN mirrored, DGN 0, consistent 0, ts 0
        _STRUCT_DATA_HDR.pack_into(self._data, 0, mgn, 0, 0, 0.0)

        # Shadow state for REPRO_SANITIZE runs; None when disabled, so
        # the hot paths pay a single is-None branch.
        self._shadow = sanitize.attach(self)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        name: str,
        schema: str,
        metrics: list[tuple[str, MetricType, int]],
        arena: Arena,
        mgn: int = 1,
        pool: Optional["SetArenaPool"] = None,
    ) -> "MetricSet":
        """Create a producer-side set; assigns data offsets sequentially."""
        if not name or len(name.encode()) >= SET_NAME_LEN:
            raise ValueError(f"bad set name {name!r}")
        if not schema or len(schema.encode()) >= SCHEMA_NAME_LEN:
            raise ValueError(f"bad schema name {schema!r}")
        if not metrics:
            raise ValueError("metric set must contain at least one metric")
        descs: list[MetricDesc] = []
        off = _DATA_HDR_SIZE
        for mname, mtype, comp_id in metrics:
            size = mtype.size
            off = (off + size - 1) & ~(size - 1)  # natural alignment
            descs.append(MetricDesc(mname, mtype, comp_id, off))
            off += size
        return cls(name, schema, descs, arena, mgn=mgn, data_size=off, pool=pool)

    @classmethod
    def from_meta(
        cls, meta: bytes | memoryview, arena: Arena,
        pool: Optional["SetArenaPool"] = None,
    ) -> "MetricSet":
        """Construct a consumer-side mirror from a metadata chunk."""
        meta = bytes(meta)
        if len(meta) < _META_HDR_SIZE:
            raise ValueError("truncated metadata chunk")
        magic, meta_size, data_size, card, mgn, name_b, schema_b = struct.unpack_from(
            _META_HDR_FMT, meta, 0
        )
        if magic != _META_MAGIC:
            raise ValueError("bad metadata magic")
        if len(meta) != meta_size:
            raise ValueError(f"metadata size mismatch: header says {meta_size}, got {len(meta)}")
        end = _META_HDR_SIZE + card * MetricDesc.WIRE_SIZE
        if len(meta) < end:
            raise ValueError("truncated descriptor block")
        descs = MetricDesc.unpack_block(meta[_META_HDR_SIZE:end])
        mset = cls(
            name_b.rstrip(b"\x00").decode("utf-8"),
            schema_b.rstrip(b"\x00").decode("utf-8"),
            descs,
            arena,
            mgn=mgn,
            data_size=data_size,
            meta_src=meta,
            pool=pool,
        )
        if mset._shadow is not None:
            # Mirrors get the consumer-side checks: decoding values
            # while the consistent flag is clear is a violation here.
            mset._shadow.is_mirror = True
        return mset

    def delete(self) -> None:
        """Release the set's arena memory (and its columnar row)."""
        if not self._deleted:
            self._deleted = True
            self._meta.release()
            self._data.release()
            if self._ab is not None:
                self._ab.free_row(self._arow)
                self._ab = None
            self.arena.free(self._meta_off)
            self.arena.free(self._data_off)

    # ------------------------------------------------------------------
    # identity / geometry
    # ------------------------------------------------------------------
    @property
    def card(self) -> int:
        """Number of metrics in the set."""
        return len(self.descs)

    @property
    def total_size(self) -> int:
        return self.meta_size + self.data_size

    @property
    def data_fraction(self) -> float:
        """Data chunk as a fraction of total set size (paper: ~10%)."""
        return self.data_size / self.total_size

    def info(self) -> SetInfo:
        return SetInfo(self.name, self.schema, self.card, self.meta_size, self.data_size)

    def metric_names(self) -> list[str]:
        return [d.name for d in self.descs]

    def metric_types(self) -> tuple[MetricType, ...]:
        return self._compiled.mtypes

    def component_ids(self) -> tuple[int, ...]:
        return self._comp_ids

    def index_of(self, name: str) -> int:
        return self._index[name]

    def indices_of(self, names) -> list[int]:
        """Resolve metric names to indices once (plugin config() time)."""
        idx = self._index
        return [idx[n] for n in names]

    # ------------------------------------------------------------------
    # generation numbers / consistency
    # ------------------------------------------------------------------
    @property
    def dgn(self) -> int:
        return _STRUCT_Q.unpack_from(self._data, _DGN_OFF)[0]

    @property
    def is_consistent(self) -> bool:
        return self._data[_CONSISTENT_OFF] == 1

    @property
    def timestamp(self) -> float:
        return _STRUCT_D.unpack_from(self._data, _TS_OFF)[0]

    @property
    def data_mgn(self) -> int:
        """MGN as carried in the data chunk (for mismatch detection)."""
        return struct.unpack_from("<I", self._data, 0)[0]

    # ------------------------------------------------------------------
    # producer API
    # ------------------------------------------------------------------
    def begin_transaction(self) -> None:
        """Start a sampling transaction: clears the consistent flag."""
        if self._in_transaction:
            raise ReproError(f"nested transaction on set {self.name!r}")
        if self._shadow is not None:
            sanitize.check(self, "begin_transaction")
        self._in_transaction = True
        self._data[_CONSISTENT_OFF] = 0

    def end_transaction(self, timestamp: float) -> None:
        """Finish a transaction: stamp time, set consistent."""
        if not self._in_transaction:
            raise ReproError(f"end_transaction without begin on {self.name!r}")
        if self._shadow is not None:
            sanitize.check(self, "end_transaction")
        _STRUCT_D.pack_into(self._data, _TS_OFF, timestamp)
        self._data[_CONSISTENT_OFF] = 1
        self._in_transaction = False

    def set_value(self, metric: str | int, value: float | int) -> None:
        """Write one metric value; increments the DGN (paper §IV-B).

        The common case (an in-range value) is one cached-``Struct``
        pack; out-of-range/mistyped values fall back to the type's clamp
        (C-like wraparound), exactly as the unconditional-clamp path did.
        """
        i = metric if isinstance(metric, int) else self._index[metric]
        cs = self._compiled
        st = cs.metric_structs[i]
        off = cs.offsets[i]
        try:
            st.pack_into(self._data, off, value)
        except (struct.error, TypeError, OverflowError):
            st.pack_into(self._data, off, cs.clamps[i](value))
        self._dgn = dgn = (self._dgn + 1) & _U64_MASK
        _STRUCT_Q.pack_into(self._data, _DGN_OFF, dgn)
        if self._shadow is not None:
            sanitize.commit(self)

    def set_values(self, values) -> None:
        """Write every metric in descriptor order with one compiled pack.

        This is the mid-transaction bulk setter used by sampler plugins
        from ``do_sample``: one whole-row ``pack_into`` (pad bytes
        written as zero, matching the arena's zero-fill) plus a single
        transaction-scoped DGN bump of ``card`` — the same final DGN the
        per-metric path produces.
        """
        card = len(self.descs)
        if len(values) != card:
            raise ValueError(f"expected {card} values, got {len(values)}")
        cs = self._compiled
        rs = cs.row_struct
        if rs is not None:
            try:
                rs.pack_into(self._data, _DATA_HDR_SIZE, *values)
            except (struct.error, TypeError, OverflowError):
                rs.pack_into(
                    self._data,
                    _DATA_HDR_SIZE,
                    *[c(v) for c, v in zip(cs.clamps, values)],
                )
        else:
            data = self._data
            structs, offs, clamps = cs.metric_structs, cs.offsets, cs.clamps
            for i, v in enumerate(values):
                try:
                    structs[i].pack_into(data, offs[i], v)
                except (struct.error, TypeError, OverflowError):
                    structs[i].pack_into(data, offs[i], clamps[i](v))
        self._dgn = dgn = (self._dgn + card) & _U64_MASK
        _STRUCT_Q.pack_into(self._data, _DGN_OFF, dgn)
        if self._shadow is not None:
            sanitize.commit(self)

    def set_all(self, values, timestamp: float) -> None:
        """Whole-set update in one transaction (the common sampler path)."""
        if len(values) != self.card:
            raise ValueError(f"expected {self.card} values, got {len(values)}")
        self.begin_transaction()
        self.set_values(values)
        self.end_transaction(timestamp)

    # ------------------------------------------------------------------
    # consumer API
    # ------------------------------------------------------------------
    def get(self, metric: str | int) -> float | int:
        if self._shadow is not None:
            sanitize.check_read(self)
        i = metric if isinstance(metric, int) else self._index[metric]
        cs = self._compiled
        return cs.metric_structs[i].unpack_from(self._data, cs.offsets[i])[0]

    def values_tuple(self) -> tuple[float | int, ...]:
        """All values in descriptor order, decoded with one unpack."""
        if self._shadow is not None:
            sanitize.check_read(self)
        rs = self._compiled.row_struct
        if rs is not None:
            return rs.unpack_from(self._data, _DATA_HDR_SIZE)
        return tuple(self.get(i) for i in range(self.card))

    def values(self) -> list[float | int]:
        return list(self.values_tuple())

    def values_array(self):
        """Values as a numpy array (bulk store/analysis decode path).

        Homogeneous contiguous layouts decode as a single ``frombuffer``
        (copied out so the result does not alias the live data chunk);
        mixed layouts go through the compiled row unpack into a result
        dtype resolved once per schema (``np.asarray`` without a dtype
        re-ran full type inference over every element on every call).
        """
        import numpy as np

        if self._shadow is not None:
            sanitize.check_read(self)
        cs = self._compiled
        dtype = cs.array_dtype
        if dtype is not None:
            return np.frombuffer(
                self._data, dtype=dtype, count=self.card,
                offset=cs.first_offset,
            ).copy()
        mixed = cs.mixed_dtype
        if mixed is None:
            mixed = cs.mixed_dtype = np.result_type(
                *(np.dtype(_NUMPY_CODE[t]) for t in cs.mtypes)
            )
        return np.asarray(self.values_tuple(), dtype=mixed)

    def snapshot_values(self, data: bytes) -> tuple[float | int, ...]:
        """Decode a raw data-chunk snapshot taken from this set's layout.

        The columnar flush path stages ``bytes(set._data)`` at delivery
        time and materializes records later; this is the scalar decode
        for layouts (or batch sizes) the vectorized sweep doesn't cover.
        No sanitize check: the snapshot is already detached from the
        live chunk.
        """
        cs = self._compiled
        rs = cs.row_struct
        if rs is not None:
            return rs.unpack_from(data, _DATA_HDR_SIZE)
        return tuple(
            st.unpack_from(data, off)[0]
            for st, off in zip(cs.metric_structs, cs.offsets)
        )

    def as_dict(self) -> dict[str, float | int]:
        return dict(zip(self._names, self.values_tuple()))

    # ------------------------------------------------------------------
    # wire representation
    # ------------------------------------------------------------------
    def meta_bytes(self) -> bytes:
        """A copy of the metadata chunk (sent once, on lookup)."""
        return bytes(self._meta)

    def data_bytes(self) -> bytes:
        """A copy of the data chunk (what an update transfers).

        Note: this is a *raw memory read*, exactly like an RDMA fetch —
        if a transaction is in flight the consistent flag in the copy is
        clear and the consumer must discard the sample.
        """
        if self._shadow is not None:
            sanitize.check(self, "data_bytes")
        return bytes(self._data)

    def data_view(self) -> memoryview:
        """Zero-copy read-only view of the data chunk (local transport)."""
        if self._shadow is not None:
            sanitize.check(self, "data_view")
        return self._data.toreadonly()

    def peek_data_header(self, raw: bytes | memoryview) -> tuple[int, bool]:
        """Validate a fetched data chunk and return ``(dgn, consistent)``
        without installing it.

        This is the aggregator's skip-on-stale fast path: three header
        fields are read straight from the raw buffer, so a fetch whose
        DGN has not advanced (or that is torn) costs no data copy.

        Raises :class:`ValueError` on a size mismatch and
        :class:`SchemaMismatch` if the data's MGN does not match this
        mirror's metadata MGN — the consumer must re-lookup.
        """
        if len(raw) != self.data_size:
            raise ValueError(f"data size mismatch: expected {self.data_size}, got {len(raw)}")
        mgn, dgn, consistent = _STRUCT_DATA_PEEK.unpack_from(raw, 0)
        if mgn != self.mgn:
            raise SchemaMismatch(
                f"set {self.name!r}: data MGN {mgn} != metadata MGN {self.mgn}"
            )
        return dgn, consistent == 1

    def apply_data(self, raw: bytes | memoryview) -> None:
        """Install a fetched data chunk into this (mirror) set.

        Raises :class:`SchemaMismatch` if the data's MGN does not match
        this mirror's metadata MGN — the consumer must re-lookup.
        """
        dgn, consistent = self.peek_data_header(raw)
        self._install(raw, dgn, consistent)

    def _install(self, raw: bytes | memoryview, dgn: int, consistent: bool) -> None:
        """Install an already-peeked data chunk (skips re-validation —
        the aggregator's completion path peeks first to drop stale and
        torn fetches, so validating again per update would be pure
        overhead)."""
        if self._shadow is not None:
            sanitize.check_apply(self, dgn, consistent)
        self._data[:] = raw
        self._dgn = dgn
        if self._shadow is not None:
            sanitize.commit(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricSet {self.name!r} schema={self.schema!r} card={self.card} "
            f"meta={self.meta_size}B data={self.data_size}B dgn={self.dgn}>"
        )
