"""Metric sets: the unit of collection, transport, and storage.

A metric set is two contiguous chunks of memory (paper §IV-B):

* **metadata chunk** — describes the elements of the data chunk (name,
  user-defined component id, value type, offset of the element from the
  beginning of the data chunk) plus a *metadata generation number* (MGN)
  which changes whenever the metadata changes.

* **data chunk** — the sampled values, plus the MGN, a *data generation
  number* (DGN) incremented as each element is updated, a *consistent*
  flag telling a consumer whether all values came from the same sampling
  event, and the sample timestamp.

Only the data chunk moves on an update; consumers keep a cached copy of
the metadata from the initial lookup and use the MGN to detect staleness
and the DGN to discriminate new data from old.  The data chunk is
roughly 10% of the total set size in the paper's deployments — a ratio
this implementation reproduces (64-byte names + descriptor overhead in
metadata vs 8-byte values in data).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.memory import Arena
from repro.core.metric import MetricDesc, MetricType
from repro.util.errors import ReproError

__all__ = ["MetricSet", "SetInfo", "SET_NAME_LEN", "SCHEMA_NAME_LEN"]

SET_NAME_LEN = 128
SCHEMA_NAME_LEN = 64

_META_HDR_FMT = f"<4sIIII{SET_NAME_LEN}s{SCHEMA_NAME_LEN}s"
_META_HDR_SIZE = struct.calcsize(_META_HDR_FMT)
_META_MAGIC = b"LDMS"

# data header: MGN u32, DGN u64, consistent u8, 3 pad, timestamp f64
_DATA_HDR_FMT = "<IQB3xd"
_DATA_HDR_SIZE = struct.calcsize(_DATA_HDR_FMT)

_DGN_OFF = 4
_CONSISTENT_OFF = 12
_TS_OFF = 16


class SchemaMismatch(ReproError):
    """The data chunk's MGN does not match the cached metadata's MGN."""


@dataclass(frozen=True)
class SetInfo:
    """Summary of a set as reported by the directory protocol."""

    name: str
    schema: str
    card: int
    meta_size: int
    data_size: int

    @property
    def total_size(self) -> int:
        return self.meta_size + self.data_size


class MetricSet:
    """A typed, fixed-layout record of metric values.

    Producer side (sampler plugins)::

        s = MetricSet.create("node1/meminfo", "meminfo",
                             [("Active", MetricType.U64, 1),
                              ("MemFree", MetricType.U64, 1)], arena=arena)
        s.begin_transaction()
        s.set_value("Active", 12345)
        s.end_transaction(timestamp=now)

    Consumer side (aggregators)::

        mirror = MetricSet.from_meta(s.meta_bytes(), arena=agg_arena)
        mirror.apply_data(s.data_bytes())
        mirror.get("Active")
    """

    def __init__(
        self,
        name: str,
        schema: str,
        descs: list[MetricDesc],
        arena: Arena,
        mgn: int,
        data_size: int,
    ):
        self.name = name
        self.schema = schema
        self.descs = descs
        self.arena = arena
        self.mgn = mgn
        self._index = {d.name: i for i, d in enumerate(descs)}
        if len(self._index) != len(descs):
            raise ValueError(f"duplicate metric names in set {name!r}")

        self.meta_size = _META_HDR_SIZE + len(descs) * MetricDesc.WIRE_SIZE
        self.data_size = data_size

        self._meta_off = arena.alloc(self.meta_size)
        try:
            self._data_off = arena.alloc(self.data_size)
        except Exception:
            arena.free(self._meta_off)
            raise
        self._meta = arena.view(self._meta_off, self.meta_size)
        self._data = arena.view(self._data_off, self.data_size)
        self._in_transaction = False
        self._deleted = False

        # Serialize metadata into the metadata chunk.
        struct.pack_into(
            _META_HDR_FMT,
            self._meta,
            0,
            _META_MAGIC,
            self.meta_size,
            self.data_size,
            len(descs),
            mgn,
            name.encode("utf-8"),
            schema.encode("utf-8"),
        )
        pos = _META_HDR_SIZE
        for d in descs:
            self._meta[pos : pos + MetricDesc.WIRE_SIZE] = d.pack()
            pos += MetricDesc.WIRE_SIZE
        # Data header: MGN mirrored, DGN 0, consistent 0, ts 0
        struct.pack_into(_DATA_HDR_FMT, self._data, 0, mgn, 0, 0, 0.0)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        name: str,
        schema: str,
        metrics: list[tuple[str, MetricType, int]],
        arena: Arena,
        mgn: int = 1,
    ) -> "MetricSet":
        """Create a producer-side set; assigns data offsets sequentially."""
        if not name or len(name.encode()) >= SET_NAME_LEN:
            raise ValueError(f"bad set name {name!r}")
        if not schema or len(schema.encode()) >= SCHEMA_NAME_LEN:
            raise ValueError(f"bad schema name {schema!r}")
        if not metrics:
            raise ValueError("metric set must contain at least one metric")
        descs: list[MetricDesc] = []
        off = _DATA_HDR_SIZE
        for mname, mtype, comp_id in metrics:
            size = mtype.size
            off = (off + size - 1) & ~(size - 1)  # natural alignment
            descs.append(MetricDesc(mname, mtype, comp_id, off))
            off += size
        return cls(name, schema, descs, arena, mgn=mgn, data_size=off)

    @classmethod
    def from_meta(cls, meta: bytes | memoryview, arena: Arena) -> "MetricSet":
        """Construct a consumer-side mirror from a metadata chunk."""
        meta = bytes(meta)
        if len(meta) < _META_HDR_SIZE:
            raise ValueError("truncated metadata chunk")
        magic, meta_size, data_size, card, mgn, name_b, schema_b = struct.unpack_from(
            _META_HDR_FMT, meta, 0
        )
        if magic != _META_MAGIC:
            raise ValueError("bad metadata magic")
        if len(meta) != meta_size:
            raise ValueError(f"metadata size mismatch: header says {meta_size}, got {len(meta)}")
        descs = []
        pos = _META_HDR_SIZE
        for _ in range(card):
            descs.append(MetricDesc.unpack(meta[pos : pos + MetricDesc.WIRE_SIZE]))
            pos += MetricDesc.WIRE_SIZE
        return cls(
            name_b.rstrip(b"\x00").decode("utf-8"),
            schema_b.rstrip(b"\x00").decode("utf-8"),
            descs,
            arena,
            mgn=mgn,
            data_size=data_size,
        )

    def delete(self) -> None:
        """Release the set's arena memory."""
        if not self._deleted:
            self._deleted = True
            self._meta.release()
            self._data.release()
            self.arena.free(self._meta_off)
            self.arena.free(self._data_off)

    # ------------------------------------------------------------------
    # identity / geometry
    # ------------------------------------------------------------------
    @property
    def card(self) -> int:
        """Number of metrics in the set."""
        return len(self.descs)

    @property
    def total_size(self) -> int:
        return self.meta_size + self.data_size

    @property
    def data_fraction(self) -> float:
        """Data chunk as a fraction of total set size (paper: ~10%)."""
        return self.data_size / self.total_size

    def info(self) -> SetInfo:
        return SetInfo(self.name, self.schema, self.card, self.meta_size, self.data_size)

    def metric_names(self) -> list[str]:
        return [d.name for d in self.descs]

    def index_of(self, name: str) -> int:
        return self._index[name]

    # ------------------------------------------------------------------
    # generation numbers / consistency
    # ------------------------------------------------------------------
    @property
    def dgn(self) -> int:
        return struct.unpack_from("<Q", self._data, _DGN_OFF)[0]

    @property
    def is_consistent(self) -> bool:
        return self._data[_CONSISTENT_OFF] == 1

    @property
    def timestamp(self) -> float:
        return struct.unpack_from("<d", self._data, _TS_OFF)[0]

    @property
    def data_mgn(self) -> int:
        """MGN as carried in the data chunk (for mismatch detection)."""
        return struct.unpack_from("<I", self._data, 0)[0]

    # ------------------------------------------------------------------
    # producer API
    # ------------------------------------------------------------------
    def begin_transaction(self) -> None:
        """Start a sampling transaction: clears the consistent flag."""
        if self._in_transaction:
            raise ReproError(f"nested transaction on set {self.name!r}")
        self._in_transaction = True
        self._data[_CONSISTENT_OFF] = 0

    def end_transaction(self, timestamp: float) -> None:
        """Finish a transaction: stamp time, set consistent."""
        if not self._in_transaction:
            raise ReproError(f"end_transaction without begin on {self.name!r}")
        struct.pack_into("<d", self._data, _TS_OFF, timestamp)
        self._data[_CONSISTENT_OFF] = 1
        self._in_transaction = False

    def set_value(self, metric: str | int, value: float | int) -> None:
        """Write one metric value; increments the DGN (paper §IV-B)."""
        i = metric if isinstance(metric, int) else self._index[metric]
        d = self.descs[i]
        struct.pack_into("<" + d.mtype.struct_code, self._data, d.data_offset, d.mtype.clamp(value))
        dgn = struct.unpack_from("<Q", self._data, _DGN_OFF)[0]
        struct.pack_into("<Q", self._data, _DGN_OFF, (dgn + 1) & 0xFFFFFFFFFFFFFFFF)

    def set_all(self, values, timestamp: float) -> None:
        """Whole-set update in one transaction (the common sampler path)."""
        if len(values) != self.card:
            raise ValueError(f"expected {self.card} values, got {len(values)}")
        self.begin_transaction()
        for i, v in enumerate(values):
            self.set_value(i, v)
        self.end_transaction(timestamp)

    # ------------------------------------------------------------------
    # consumer API
    # ------------------------------------------------------------------
    def get(self, metric: str | int) -> float | int:
        i = metric if isinstance(metric, int) else self._index[metric]
        d = self.descs[i]
        return struct.unpack_from("<" + d.mtype.struct_code, self._data, d.data_offset)[0]

    def values(self) -> list[float | int]:
        return [self.get(i) for i in range(self.card)]

    def as_dict(self) -> dict[str, float | int]:
        return {d.name: self.get(i) for i, d in enumerate(self.descs)}

    # ------------------------------------------------------------------
    # wire representation
    # ------------------------------------------------------------------
    def meta_bytes(self) -> bytes:
        """A copy of the metadata chunk (sent once, on lookup)."""
        return bytes(self._meta)

    def data_bytes(self) -> bytes:
        """A copy of the data chunk (what an update transfers).

        Note: this is a *raw memory read*, exactly like an RDMA fetch —
        if a transaction is in flight the consistent flag in the copy is
        clear and the consumer must discard the sample.
        """
        return bytes(self._data)

    def data_view(self) -> memoryview:
        """Zero-copy read-only view of the data chunk (local transport)."""
        return self._data.toreadonly()

    def apply_data(self, raw: bytes | memoryview) -> None:
        """Install a fetched data chunk into this (mirror) set.

        Raises :class:`SchemaMismatch` if the data's MGN does not match
        this mirror's metadata MGN — the consumer must re-lookup.
        """
        if len(raw) != self.data_size:
            raise ValueError(f"data size mismatch: expected {self.data_size}, got {len(raw)}")
        mgn = struct.unpack_from("<I", raw, 0)[0]
        if mgn != self.mgn:
            raise SchemaMismatch(
                f"set {self.name!r}: data MGN {mgn} != metadata MGN {self.mgn}"
            )
        self._data[:] = raw

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricSet {self.name!r} schema={self.schema!r} card={self.card} "
            f"meta={self.meta_size}B data={self.data_size}B dgn={self.dgn}>"
        )
