"""Store plugin framework.

Storage plugins run on aggregators and write collected metric sets to
stable storage (paper §IV-A/B).  The aggregator hands each successfully
updated, *consistent*, *fresh* (DGN advanced) set to every store whose
policy matches; stale or torn collections are never stored.

Storage may be specified at a {producer, metric name} granularity,
though the typical case is per metric set/schema (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.core.metric import MetricType
from repro.core.metric_set import MetricSet
from repro.util.errors import ConfigError, StoreError

__all__ = ["StoreRecord", "StorePolicy", "StorePlugin", "store_registry", "register_store"]


@dataclass(frozen=True)
class StoreRecord:
    """One stored collection event: a timestamped row of a metric set."""

    timestamp: float
    producer: str
    set_name: str
    schema: str
    names: tuple[str, ...]
    component_ids: tuple[int, ...]
    values: tuple[float | int, ...]
    #: Per-column value types (None for hand-built records).  Stores use
    #: these to compile per-schema row formatters once instead of
    #: type-dispatching on every value.
    mtypes: Optional[tuple[MetricType, ...]] = None

    @classmethod
    def from_set(cls, mset: MetricSet, producer: str) -> "StoreRecord":
        # names/component_ids/mtypes are frozen with the schema, so the
        # per-collection cost is just the timestamp and the bulk decode.
        return cls(
            timestamp=mset.timestamp,
            producer=producer,
            set_name=mset.name,
            schema=mset.schema,
            names=mset._names,
            component_ids=mset._comp_ids,
            values=mset.values_tuple(),
            mtypes=mset.metric_types(),
        )

    def filtered(self, metric_names: Iterable[str]) -> "StoreRecord":
        """Project onto a subset of metrics (per-metric-name policies)."""
        wanted = set(metric_names)
        idx = [i for i, n in enumerate(self.names) if n in wanted]
        missing = wanted - {self.names[i] for i in idx}
        if missing:
            raise ConfigError(f"metrics not in set {self.set_name!r}: {sorted(missing)}")
        return StoreRecord(
            timestamp=self.timestamp,
            producer=self.producer,
            set_name=self.set_name,
            schema=self.schema,
            names=tuple(self.names[i] for i in idx),
            component_ids=tuple(self.component_ids[i] for i in idx),
            values=tuple(self.values[i] for i in idx),
            mtypes=(tuple(self.mtypes[i] for i in idx)
                    if self.mtypes is not None else None),
        )


@dataclass
class StorePolicy:
    """Which collections a store instance receives.

    ``schema`` limits to one schema (the typical case); ``producers``
    and ``metrics`` optionally narrow to specific producers / metric
    names (the {producer, metric name} granularity in §IV-C).
    """

    schema: Optional[str] = None
    producers: Optional[frozenset[str]] = None
    metrics: Optional[tuple[str, ...]] = None

    def matches(self, record: StoreRecord) -> bool:
        return self.matches_keys(record.schema, record.producer)

    def matches_keys(self, schema: str, producer: str) -> bool:
        """Match on the raw policy inputs without a materialized record.

        The columnar flush path stages raw arena rows and only builds
        :class:`StoreRecord` objects inside the batch drain; since the
        policy depends solely on (schema, producer) — both frozen per
        mirror — staging can route rows (and cache the answer) without
        decoding them.
        """
        if self.schema is not None and schema != self.schema:
            return False
        if self.producers is not None and producer not in self.producers:
            return False
        return True

    def project(self, record: StoreRecord) -> StoreRecord:
        return record.filtered(self.metrics) if self.metrics is not None else record


class StorePlugin:
    """Base class for store plugins.

    Subclasses implement :meth:`store` (buffered write of one record),
    :meth:`flush`, and :meth:`close`.  ``config`` receives plugin
    specific parameters (path, container name, ...).
    """

    plugin_name: str = "abstract"

    def __init__(self) -> None:
        self.policy = StorePolicy()
        self.records_stored = 0
        self.records_failed = 0
        self.records_dropped = 0
        self.last_error: Optional[str] = None
        self.configured = False
        #: Fault-injection switch (``store_fail`` events): while set,
        #: every write raises as if the backend were down.
        self.fail_writes = False

    def config(self, **kwargs) -> None:
        self.configured = True

    def wants(self, record: StoreRecord) -> bool:
        return self.policy.matches(record)

    def submit(self, record: StoreRecord) -> None:
        """Policy-filter then store.

        A record the policy rejects counts as *dropped*; a ``store()``
        that raises counts as *failed* and re-raises as
        :class:`~repro.util.errors.StoreError` so the flush worker has
        one narrow type to catch.  Both counters surface in
        ``Ldmsd.stats()`` next to ``records_stored``.
        """
        if not self.wants(record):
            self.records_dropped += 1
            return
        if self.fail_writes:
            self.records_failed += 1
            self.last_error = "injected write failure"
            raise StoreError(f"{self.plugin_name}: injected write failure")
        try:
            self.store(self.policy.project(record))
        except Exception as exc:
            self.records_failed += 1
            self.last_error = str(exc)
            raise StoreError(f"{self.plugin_name}: {exc}") from exc
        self.records_stored += 1

    def submit_many(self, records: list[StoreRecord]) -> int:
        """Policy-filter then store a whole batch; returns failed count.

        The vectorized flush path: one flush-thread wakeup hands every
        buffered record to the plugin at once, so per-call overhead
        (policy checks aside) is paid per *batch* via
        :meth:`store_many`.  Counter semantics match per-record
        ``submit``: rejects count as dropped, failures as failed.  A
        ``store_many`` that raises fails the whole remaining batch —
        plugins wanting per-row granularity override ``store_many``.
        """
        if self.fail_writes:
            n = len(records)
            self.records_failed += n
            self.last_error = "injected write failure"
            return n
        policy = self.policy
        todo = []
        for record in records:
            if not policy.matches(record):
                self.records_dropped += 1
                continue
            todo.append(policy.project(record))
        if not todo:
            return 0
        try:
            self.store_many(todo)
        except Exception as exc:
            self.records_failed += len(todo)
            self.last_error = str(exc)
            return len(todo)
        self.records_stored += len(todo)
        return 0

    def store(self, record: StoreRecord) -> None:
        raise NotImplementedError

    def store_many(self, records: list[StoreRecord]) -> None:
        """Write a batch of already-filtered records (override to
        vectorize; the default just loops :meth:`store`)."""
        for record in records:
            self.store(record)

    def flush(self) -> None:
        """Push buffered data to stable storage."""

    def close(self) -> None:
        self.flush()

    # -- introspection for footprint accounting -----------------------------
    def bytes_written(self) -> int:
        """Total bytes this store has written (0 if not applicable)."""
        return 0


#: plugin name -> plugin class
store_registry: dict[str, type[StorePlugin]] = {}


def register_store(name: str) -> Callable[[type], type]:
    def deco(cls: type) -> type:
        if name in store_registry:
            raise ConfigError(f"store plugin {name!r} already registered")
        cls.plugin_name = name
        store_registry[name] = cls
        return cls

    return deco
