"""Columnar metric-set arenas: the vectorized data-plane backing store.

A :class:`SetArenaPool` backs every same-layout metric set of a
simulated node population with rows of one contiguous numpy block
(rows = sets, columns = bytes of the data chunk).  Individually
allocated :class:`~repro.core.metric_set.MetricSet` objects remain the
API — each set's ``_data`` chunk simply becomes a memoryview of its
arena row — but the hot loops gain whole-population sweeps:

* **sampling** — a :class:`SampleCohort` fires every same-phase
  synthetic sampler with one periodic timer and one finish event,
  writing values / DGN / timestamp / consistent-flag columns for all
  member rows in single numpy ops (paper §IV-A: the per-metric collect
  cost amortized across the node class);
* **store flush** — staged arena-row snapshots decode as one 2-D
  ``frombuffer`` per flush batch instead of one struct unpack per row
  (§IV-D: the aggregator's store cost);
* **update validation** — MGN/DGN/consistent peeks over a producer
  batch run as one vectorized compare against the shadow-DGN column.

Everything is DES-pure: cohort members replicate the exact per-member
accounting (worker-pool grants, busy time, transaction flags, sanitizer
commits) of the scalar path, so same-seed runs are byte-identical with
``REPRO_ARENA=0`` (the revert switch, mirroring ``REPRO_TIMER_WHEEL``).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core import sanitize
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.ldmsd import Ldmsd
    from repro.core.sampler import SamplerPlugin

__all__ = ["SetArenaPool", "ArenaBlock", "SampleCohort", "CohortScheduler",
           "arena_default"]

# Data-chunk header geometry (mirrors repro.core.metric_set).
_MGN_OFF = 0
_DGN_OFF = 4
_CONSISTENT_OFF = 12
_TS_OFF = 16
_DATA_HDR_SIZE = 24
_U64_MASK = 0xFFFFFFFFFFFFFFFF

#: Row capacities of successive blocks of one arena.  Blocks are never
#: reallocated (live memoryviews alias their rows); growth chains new
#: blocks, so a 9,216-set population lands in four allocations.
_BLOCK_CAPS = (256, 1024, 4096, 8192)


def arena_default() -> bool:
    """Whether the columnar arena data plane is enabled (REPRO_ARENA)."""
    return os.environ.get("REPRO_ARENA", "1") not in ("0", "false", "off")


class ArenaBlock:
    """One fixed-capacity 2-D byte block plus its header column views.

    ``block[r]`` is the data chunk of the set occupying row ``r``; the
    column views decode the shared header fields for all rows at once
    (the unaligned-offset views are legal because the trailing axis of a
    row-major slice stays contiguous).
    """

    __slots__ = ("arena", "block", "capacity", "data_size", "mgn", "dgn",
                 "flags", "ts", "values_mat", "n_values", "_free", "_next")

    def __init__(self, arena: "_SetArena", capacity: int):
        self.arena = arena
        self.capacity = capacity
        self.data_size = ds = arena.data_size
        self.block = block = np.zeros((capacity, ds), dtype=np.uint8)
        self.mgn = block[:, _MGN_OFF:_MGN_OFF + 4].view("<u4")[:, 0]
        self.dgn = block[:, _DGN_OFF:_DGN_OFF + 8].view("<u8")[:, 0]
        self.flags = block[:, _CONSISTENT_OFF]
        self.ts = block[:, _TS_OFF:_TS_OFF + 8].view("<f8")[:, 0]
        # Value matrix: only homogeneous contiguous layouts decode as a
        # typed 2-D view; mixed layouts still get row-backed storage and
        # header sweeps, just not whole-column value writes.
        dtype = arena.array_dtype
        if dtype is not None:
            first = arena.first_offset
            n = self.n_values = arena.n_values
            width = n * np.dtype(dtype).itemsize
            self.values_mat = block[:, first:first + width].view(dtype)
        else:
            self.n_values = 0
            self.values_mat = None
        self._free: list[int] = []
        self._next = 0

    def alloc_row(self) -> int:
        if self._free:
            return self._free.pop()
        r = self._next
        if r >= self.capacity:
            return -1
        self._next = r + 1
        return r

    def free_row(self, row: int) -> None:
        # Zero the row (matching Arena.free's scrub) so a recycled row
        # never leaks a previous set's values.
        self.block[row] = 0
        self._free.append(row)


class _SetArena:
    """All blocks backing one (layout, data_size) set population."""

    __slots__ = ("data_size", "array_dtype", "first_offset", "n_values",
                 "blocks", "rows_allocated")

    def __init__(self, data_size: int, array_dtype: Optional[str],
                 first_offset: int, n_values: int):
        self.data_size = data_size
        self.array_dtype = array_dtype
        self.first_offset = first_offset
        self.n_values = n_values
        self.blocks: list[ArenaBlock] = []
        self.rows_allocated = 0

    def acquire(self) -> tuple[ArenaBlock, int]:
        for blk in self.blocks:
            row = blk.alloc_row()
            if row >= 0:
                self.rows_allocated += 1
                return blk, row
        cap = _BLOCK_CAPS[min(len(self.blocks), len(_BLOCK_CAPS) - 1)]
        blk = ArenaBlock(self, cap)
        self.blocks.append(blk)
        self.rows_allocated += 1
        return blk, blk.alloc_row()


class SetArenaPool:
    """Per-environment registry of columnar arenas, keyed by compiled
    schema (layout identity), so every same-layout set of the simulated
    population shares one block family."""

    __slots__ = ("_arenas",)

    def __init__(self):
        self._arenas: dict[object, _SetArena] = {}

    def acquire_row(self, compiled, data_size: int) -> tuple[ArenaBlock, int]:
        arena = self._arenas.get(compiled)
        if arena is None:
            dtype = compiled.array_dtype
            n_values = len(compiled.offsets) if dtype is not None else 0
            arena = _SetArena(data_size, dtype, compiled.first_offset, n_values)
            self._arenas[compiled] = arena
        return arena.acquire()

    def stats(self) -> dict:
        return {
            "arenas": len(self._arenas),
            "blocks": sum(len(a.blocks) for a in self._arenas.values()),
            "rows": sum(a.rows_allocated for a in self._arenas.values()),
        }


# ---------------------------------------------------------------------------
# sampler cohorts
# ---------------------------------------------------------------------------


class _CohortMember:
    """One (daemon, plugin) pair riding a cohort sweep.

    Binds everything the sweep touches per member once at registration,
    so the per-tick cost is attribute reads, not dict lookups.
    """

    __slots__ = ("daemon", "plugin", "mset", "pool", "core", "cost",
                 "h_sample", "c_samples", "c_rows", "begin", "finish",
                 "removed")

    def __init__(self, daemon: "Ldmsd", plugin: "SamplerPlugin", cost: float):
        from functools import partial

        self.daemon = daemon
        self.plugin = plugin
        self.mset = plugin._sets[0]
        self.pool = daemon.worker_pool
        self.core = daemon.core
        self.cost = cost
        self.h_sample = daemon._h_sample
        self.c_samples = daemon._c_samples
        self.c_rows = daemon._c_arena_rows
        # Scalar-path callables for the contention fallback.
        self.begin = partial(daemon._begin_sample, plugin)
        self.finish = partial(daemon._finish_sample, plugin)
        self.removed = False


class _CohortHandle:
    """Duck-types ``TaskHandle`` for ``Ldmsd._schedules``."""

    __slots__ = ("cohort", "member", "cancelled")

    def __init__(self, cohort: "SampleCohort", member: _CohortMember):
        self.cohort = cohort
        self.member = member
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self.cohort.remove(self.member)


class _CohortFinish:
    """The single engine item closing a sweep's busy window (duck-types
    the engine's ``_fire`` protocol, like ``_PoolTask`` phase 2)."""

    __slots__ = ("cohort",)

    def __init__(self, cohort: "SampleCohort"):
        self.cohort = cohort

    def _fire(self) -> None:
        self.cohort._finish()


class SampleCohort:
    """All same-phase, same-cost, same-pattern samplers of a node class.

    One periodic timer fires the whole cohort; one finish event closes
    every member's busy window.  Per member and per tick the cohort
    replicates exactly what the scalar path does — worker-pool inline
    grant accounting, transaction begin/end, DGN shadow bump, duration
    telemetry, worker release — while the data writes (values, DGN,
    timestamp, consistent flag) run as whole-column numpy sweeps over
    the member rows of each arena block.
    """

    def __init__(self, scheduler: "CohortScheduler", key: tuple,
                 interval: float, synchronous: bool, offset: float):
        self.scheduler = scheduler
        self.engine = scheduler.engine
        self.key = key
        self.interval = interval
        self.members: list[_CohortMember] = []
        self._pending: list[_CohortMember] = []
        #: cached (block, row-index array) groups covering all members;
        #: invalidated on membership change, reused by full-cohort
        #: sweeps so the numpy fancy indices are built once, not per tick
        self._row_cache: Optional[list] = None
        self._finish_item = _CohortFinish(self)
        self._cost = key[-1]
        self._timer = self.engine.schedule_periodic(
            interval, self._sweep, synchronous=synchronous, offset=offset
        )

    def add(self, member: _CohortMember) -> _CohortHandle:
        self.members.append(member)
        self._row_cache = None
        return _CohortHandle(self, member)

    def remove(self, member: _CohortMember) -> None:
        member.removed = True
        try:
            self.members.remove(member)
        except ValueError:
            pass
        self._row_cache = None
        if not self.members:
            self._timer.cancel()
            self.scheduler._drop(self)

    def _row_groups(self) -> list:
        """(block, row-index array) pairs covering the full membership."""
        groups = self._row_cache
        if groups is None:
            by_block: dict[ArenaBlock, list[int]] = {}
            for m in self.members:
                by_block.setdefault(m.mset._ab, []).append(m.mset._arow)
            groups = self._row_cache = [
                (blk, np.asarray(rows, dtype=np.intp))
                for blk, rows in by_block.items()
            ]
        return groups

    # -- phase 1: the tick ------------------------------------------------
    def _sweep(self) -> None:
        engine = self.engine
        now = engine._now
        members = self.members
        cost = self._cost
        # The scalar path delivered one zero-alloc periodic tick per
        # member; keep the engine's fastpath counter equivalent.
        engine.timer_fastpath_ticks += len(members) - 1
        pending = self._pending
        pending.clear()
        for m in members:
            pool = m.pool
            if not pool.resource.try_acquire():
                # Worker busy: this member rides the scalar queue for
                # this tick (identical to a queued _PoolTask grant).
                m.daemon._c_arena_fallback.inc()
                pool.submit(m.finish, cost=cost, core=m.core, tag="sampler",
                            on_start=m.begin)
                continue
            # Inline-grant accounting, replicated from _SimPool.submit.
            if m.core is not None:
                m.core.add_noise(now, cost, "sampler")
            pool.busy_time += cost
            pool.tasks_run += 1
            plugin = m.plugin
            plugin._sample_t0 = now
            mset = m.mset
            if mset._in_transaction:
                raise ReproError(f"nested transaction on set {mset.name!r}")
            if mset._shadow is not None:
                sanitize.check(mset, "begin_transaction")
            mset._in_transaction = True
            pending.append(m)
        # Logical-event accounting: this one sweep fire replaced the
        # per-member timer fires the scalar path would heap-process.
        # (The finish side accounts its own replacement, so horizon
        # truncation of the final completion cancels exactly and
        # processed + vectorized equals the scalar processed count.)
        engine.vectorized_events += len(members) - 1
        if not pending:
            return
        # Open every member's sampling transaction in one flag sweep.
        if len(pending) == len(members):
            for blk, rows in self._row_groups():
                blk.flags[rows] = 0
        else:
            rows_by_block: dict[ArenaBlock, list[int]] = {}
            for m in pending:
                rows_by_block.setdefault(m.mset._ab, []).append(m.mset._arow)
            for blk, rows in rows_by_block.items():
                blk.flags[rows] = 0
        engine._push(self._finish_item, cost)

    # -- phase 2: the cost horizon ---------------------------------------
    def _finish(self) -> None:
        now = self.engine._now
        cost = self._cost
        pending = self._pending
        # This one finish fire replaced the per-member pool-task
        # completion events of the scalar path.
        self.engine.vectorized_events += len(pending) - 1
        proto = pending[0].plugin
        # Members normally tick in lockstep, so the common case is one
        # uniform tick across the full membership — served straight from
        # the cached row-index arrays.  A member whose counter drifted
        # (stop/start churn) or a partial tick (fallbacks) takes the
        # general per-(block, tick) grouping.
        ticks = [m.plugin.cohort_advance() for m in pending]
        t0 = ticks[0]
        full = len(pending) == len(self.members)
        if full and all(t == t0 for t in ticks):
            groups = self._row_groups()
            row = proto.cohort_row(t0, groups[0][0].values_mat.dtype)
            for blk, rows in groups:
                blk.values_mat[rows] = row
                # One transaction-scoped DGN bump of `card` per member —
                # the same final DGN the scalar set_values path produces.
                blk.dgn[rows] += blk.n_values
                blk.ts[rows] = now
            ngroups = len(groups)
            flag_groups = groups
        else:
            gdict: dict[tuple, list[int]] = {}
            for m, t in zip(pending, ticks):
                gdict.setdefault((m.mset._ab, t), []).append(m.mset._arow)
            for (blk, t), rows in gdict.items():
                vm = blk.values_mat
                vm[rows] = proto.cohort_row(t, vm.dtype)
                blk.dgn[rows] += blk.n_values
                blk.ts[rows] = now
            ngroups = len(gdict)
            flags_by_block: dict[ArenaBlock, list[int]] = {}
            for m in pending:
                flags_by_block.setdefault(m.mset._ab, []).append(m.mset._arow)
            flag_groups = list(flags_by_block.items())
        pending[0].daemon._c_arena_sweeps.inc(ngroups)
        card = pending[0].mset._ab.n_values
        for m in pending:
            mset = m.mset
            plugin = m.plugin
            mset._dgn = (mset._dgn + card) & _U64_MASK
            plugin.samples_taken += 1
            if mset._shadow is not None:
                sanitize.commit(mset)
                sanitize.check(mset, "end_transaction")
            mset._in_transaction = False
            plugin.last_sample_ts = now
            plugin.sample_time_total += cost
            m.h_sample.observe(cost)
            m.c_samples.inc()
            m.c_rows.inc()
            m.pool.resource.release()
        # Close every transaction in one consistent-flag sweep.
        for blk, rows in flag_groups:
            blk.flags[rows] = 1
        pending.clear()


class CohortScheduler:
    """Groups eligible samplers into :class:`SampleCohort` sweeps.

    The cohort key pins everything that must match for two samplers to
    share a tick: registration instant (so the shared periodic timer
    fires at exactly the instants each member's private timer would
    have), interval/phase, the simulated sample cost, and the plugin's
    vectorization key (pattern and layout).
    """

    def __init__(self, engine):
        self.engine = engine
        self._cohorts: dict[tuple, SampleCohort] = {}

    def register(self, daemon: "Ldmsd", plugin: "SamplerPlugin",
                 interval: float, synchronous: bool, offset: float,
                 cost: float, veckey: tuple) -> _CohortHandle:
        key = (self.engine._now, interval, synchronous, offset, veckey, cost)
        cohort = self._cohorts.get(key)
        if cohort is None:
            cohort = SampleCohort(self, key, interval, synchronous, offset)
            self._cohorts[key] = cohort
        return cohort.add(_CohortMember(daemon, plugin, cost))

    def _drop(self, cohort: SampleCohort) -> None:
        if self._cohorts.get(cohort.key) is cohort:
            del self._cohorts[cohort.key]
