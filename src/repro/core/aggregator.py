"""Aggregator-side state machines: producers, lookups, updates.

An aggregator ldmsd maintains one :class:`Producer` per collection
target (a sampler or another aggregator).  Per target it runs the
protocol of paper Fig. 2:

* connect (on the connection thread pool — kept separate from the
  update workers so connect timeouts on problem nodes cannot starve
  collection, §IV-B);
* lookup each configured metric set → build a local mirror from the
  metadata reply {c};
* on each collection interval, pull the data chunk {e}/{f} — a
  one-sided read that consumes no sampler CPU on RDMA transports;
* validate: MGN match (else re-lookup), consistent flag set and DGN
  advanced (else skip storage, §IV-A);
* hand fresh consistent records to the store layer {i}.

Non-reporting hosts are bypassed (an update already in flight is not
re-issued) and retried on the next interval.  *Standby* producers are
connected and looked-up but not pulled until explicitly activated —
the failover mechanism of §IV-B, which the paper notes is driven by an
external watchdog, not by the aggregator itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Optional

from repro.core import wire
from repro.core.metric_set import MetricSet, SchemaMismatch, SetInfo
from repro.obs.spans import HOP_UPDATE
from repro.transport.base import Endpoint
from repro.util.errors import OutOfMemory, StoreError
from repro.util.rngtools import stable_seed

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.ldmsd import Ldmsd

__all__ = ["ProducerConfig", "Producer", "UpdaterState", "SetState", "UpdateStats"]


@dataclass(frozen=True)
class ProducerConfig:
    """Configuration of one collection target.

    ``sets=()`` means "discover via DIR and collect everything".  The
    collection ``interval`` cannot be changed after the producer is
    added (the paper: "the aggregation schedule cannot be altered once
    set without restarting the aggregator").  ``offset`` non-None makes
    collection synchronous (aligned to wall-clock multiples of the
    interval plus offset).
    """

    name: str
    xprt: str
    addr: object
    interval: float
    sets: tuple[str, ...] = ()
    offset: Optional[float] = None
    standby: bool = False
    #: Base reconnect delay; consecutive failures back off exponentially
    #: (deterministically jittered) up to ``reconnect_max``, resetting on
    #: a successful connect — a dead target costs one attempt per
    #: ``reconnect_max`` instead of hammering every 2 s forever.
    reconnect_interval: float = 2.0
    reconnect_max: float = 60.0
    #: Seconds a lookup may stay unanswered before the updater falls
    #: back to ``NEW`` and retries (a lost LOOKUP_REPLY otherwise wedges
    #: the set in ``LOOKUP_PENDING`` forever).  ``None`` = twice the
    #: collection interval.
    lookup_timeout: Optional[float] = None
    #: For discovery-mode producers (``sets=()``): re-issue DIR_REQ
    #: every this many ticks so sets deleted on the target are pruned
    #: from the mirror table.  0 disables refresh.
    dir_refresh: int = 5
    #: Passive producers don't dial out; the sampler connects to the
    #: aggregator and advertises itself (asymmetric network access,
    #: §IV-B: "mechanisms to enable initiation of a connection from
    #: either side").  ``addr`` is unused for passive producers.
    passive: bool = False


class SetState(enum.Enum):
    NEW = "new"
    LOOKUP_PENDING = "lookup"
    READY = "ready"


@dataclass
class UpdateStats:
    lookups_sent: int = 0
    lookups_failed: int = 0
    lookups_timed_out: int = 0  # reply never arrived; updater reset to NEW
    sets_pruned: int = 0  # sets dropped because DIR no longer lists them
    updates_issued: int = 0
    updates_completed: int = 0
    updates_failed: int = 0
    #: Of ``updates_issued``, how many rode a coalesced multi-set fetch
    #: (one wire round-trip amortised over all READY sets, §IV-D).
    updates_coalesced: int = 0
    skipped_stale: int = 0  # DGN unchanged since last store
    skipped_inconsistent: int = 0  # torn read: consistent flag clear
    skipped_busy: int = 0  # previous update still in flight (bypass)
    schema_refreshes: int = 0  # MGN mismatch forced a re-lookup
    stored: int = 0
    #: When the last update completed (daemon clock) and the cumulative
    #: issue->completion time in seconds — enough to read a producer row
    #: as "mean RTT = update_time_total / updates_completed, last seen
    #: at last_update_ts" without the full histogram dump.
    last_update_ts: float = 0.0
    update_time_total: float = 0.0


@dataclass
class UpdaterState:
    """Per-(producer, set) collection state."""

    set_name: str
    state: SetState = SetState.NEW
    mirror: Optional[MetricSet] = None
    region_id: int = 0
    last_dgn: Optional[int] = None
    in_flight: bool = False
    #: Transaction timestamp of the last record stored from this set —
    #: the freshness tracker derives missed-interval hints from the gap
    #: to the next stored timestamp (per-set, because a per-producer
    #: timestamp would see interleaved sets as gaps).
    last_stored_ts: float = 0.0
    #: Learned DGN stride: the DGN advances once per metric *element*
    #: written, so one transaction moves it by the (schema-dependent)
    #: number of elements the sampler touches.  The smallest positive
    #: delta ever observed is that per-transaction stride; a delta of
    #: ``k`` strides then means ``k - 1`` transactions were skipped.
    dgn_stride: int = 0


class Producer:
    """Runtime state of one collection target inside an aggregator."""

    def __init__(self, daemon: "Ldmsd", cfg: ProducerConfig):
        self.daemon = daemon
        self.cfg = cfg
        self.endpoint: Optional[Endpoint] = None
        self.connecting = False
        self.active = not cfg.standby  # standby producers don't pull
        self.updaters: dict[str, UpdaterState] = {
            name: UpdaterState(name) for name in cfg.sets
        }
        self.stats = UpdateStats()
        self._timer = None
        self._reconnect_handle = None
        self._reconnect_attempts = 0
        self._ticks_since_dir = 0
        self._next_req_id = 1
        #: req_id -> (set name, send time, span ctx or None) of
        #: in-flight lookups
        self._pending_lookups: dict[int, tuple[str, float, Optional[tuple]]] = {}
        self.stopped = False
        #: Freshness state in the daemon's tracker, or None while the
        #: producer is standby / the tracker is disabled — the
        #: per-update cost is one ``is not None`` test.
        self._fresh = None
        # Telemetry instruments (shared daemon-wide by name; binding
        # them here keeps the per-event cost to one attribute access).
        obs = daemon.obs
        self._h_lookup_rtt = obs.histogram("lookup.rtt")
        self._h_update_rtt = obs.histogram("update.rtt")
        self._c_stale = obs.counter("update.skipped_stale")
        self._c_torn = obs.counter("update.skipped_inconsistent")
        self._c_busy = obs.counter("update.skipped_busy")
        self._c_failed = obs.counter("update.failed")

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def start(self) -> None:
        # Arm freshness from the configured start, not first connect:
        # a target that never connects still owes its intervals, and the
        # expectation clock must match the experiments' ground truth
        # (expected counted from deployment time).
        self._arm_freshness()
        if self.cfg.passive:
            return  # wait for the sampler to advertise
        self._connect()

    def attach(self, endpoint: Endpoint) -> None:
        """Bind an incoming (advertised) connection to this producer."""
        if self.endpoint is not None and not self.endpoint.closed:
            self.endpoint.close()
        self.endpoint = endpoint
        endpoint.obs = self.daemon.obs
        endpoint.on_message = self._on_message_locked
        endpoint.on_close = self._on_close
        self._start_timer()
        self._arm_freshness()
        if not self.updaters:
            endpoint.send(wire.encode_frame(wire.MsgType.DIR_REQ, 0))
        else:
            for name in self.updaters:
                self._send_lookup(name)

    def _arm_freshness(self) -> None:
        """(Re-)register with the daemon's freshness tracker.

        Called from the cold paths that change what this producer owes —
        connect/attach, activation, DIR-driven updater changes.  Standby
        producers stay unarmed: they are connected but not expected to
        deliver until promoted (§IV-B).
        """
        if not self.active or self.stopped:
            return
        nsets = len(self.updaters)
        self._fresh = self.daemon.freshness.arm(
            self.cfg.name, self.cfg.interval, nsets if nsets else 1,
            self.daemon.env.now())

    def _start_timer(self) -> None:
        """Arm the periodic update loop (first successful connect only).

        The first tick is additionally phase-shifted by a deterministic
        per-producer offset (derived from the producer name) so that
        periodic pulls across a deployment neither thundering-herd the
        aggregator nor sit exactly on top of the samplers' transaction
        windows — both would otherwise happen because daemons booted
        together share timer phases.
        """
        if self._timer is not None:
            return
        jitter = (stable_seed("producer-phase", self.cfg.name) % 997) / 997.0
        phase = jitter * min(self.cfg.interval * 0.25, 0.25)

        def arm() -> None:
            if self.stopped or self._timer is not None:
                return
            self._timer = self.daemon.env.call_every(
                self.cfg.interval,
                self._tick,
                synchronous=self.cfg.offset is not None,
                offset=self.cfg.offset or 0.0,
            )

        self.daemon.env.call_later(phase, arm)

    def stop(self) -> None:
        self.stopped = True
        self._fresh = None
        self.daemon.freshness.disarm(self.cfg.name)
        if self._timer is not None:
            self._timer.cancel()
        if self._reconnect_handle is not None:
            self._reconnect_handle.cancel()
        if self.endpoint is not None:
            self.endpoint.close()
            self.endpoint = None
        self._drop_mirrors()

    def activate(self) -> None:
        """Promote a standby producer: begin pulling on the next tick."""
        self.active = True
        self._arm_freshness()

    def deactivate(self) -> None:
        self.active = False
        # A deactivated standby owes nothing; leaving it armed would
        # drag fleet completeness down with intervals it was never
        # expected to deliver.
        self._fresh = None
        self.daemon.freshness.disarm(self.cfg.name)

    @property
    def connected(self) -> bool:
        return self.endpoint is not None and not self.endpoint.closed

    def _connect(self) -> None:
        if self.stopped or self.connecting or self.connected:
            return
        self.connecting = True
        xprt = self.daemon.transports[self.cfg.xprt]

        def attempt() -> None:
            xprt.connect(self.cfg.addr, self._on_connected)

        # Connection setup runs on the dedicated connection pool so a
        # target stuck in timeout cannot starve update workers (§IV-B).
        self.daemon.conn_pool.submit(
            attempt, cost=self.daemon.connect_cpu_cost, core=self.daemon.core, tag="agg-conn"
        )

    def _on_connected(self, endpoint: Optional[Endpoint]) -> None:
        with self.daemon.lock:
            self.connecting = False
            if self.stopped:
                if endpoint is not None:
                    endpoint.close()
                return
            if endpoint is None:
                self._schedule_reconnect()
                return
            self._reconnect_attempts = 0
            self.endpoint = endpoint
            endpoint.obs = self.daemon.obs
            endpoint.on_message = self._on_message_locked
            endpoint.on_close = self._on_close
            self._start_timer()
            self._arm_freshness()
            if not self.updaters:
                # Discover the target's sets first.
                endpoint.send(wire.encode_frame(wire.MsgType.DIR_REQ, 0))
            else:
                for name in self.updaters:
                    self._send_lookup(name)

    def _on_close(self) -> None:
        with self.daemon.lock:
            self.endpoint = None
            self._pending_lookups.clear()
            self._drop_mirrors()
            if not self.stopped and not self.cfg.passive:
                # Passive producers wait for the sampler to re-advertise.
                self._schedule_reconnect()

    def _reconnect_delay(self) -> float:
        """Delay before the next connect attempt.

        Capped exponential backoff with deterministic decorrelating
        jitter: attempt ``n`` waits up to ``base * 2**n`` (capped at
        ``reconnect_max``), shaved by up to 25% by a jitter derived from
        the producer name and attempt number — stable across runs (DES
        determinism) yet different across producers, so a mass
        disconnect does not retry in lockstep.
        """
        cfg = self.cfg
        raw = min(cfg.reconnect_interval * (2.0 ** min(self._reconnect_attempts, 20)),
                  cfg.reconnect_max)
        j = (stable_seed("reconnect", cfg.name, self._reconnect_attempts) % 1000) / 1000.0
        return raw * (1.0 - 0.25 * j)

    def _schedule_reconnect(self) -> None:
        if self.stopped or self._reconnect_handle is not None:
            return
        delay = self._reconnect_delay()
        self._reconnect_attempts += 1

        def retry() -> None:
            self._reconnect_handle = None
            self._connect()

        self._reconnect_handle = self.daemon.env.call_later(delay, retry)

    def _drop_mirrors(self) -> None:
        for upd in self.updaters.values():
            if upd.mirror is not None:
                self.daemon._unregister_mirror(upd.mirror)
                upd.mirror.delete()
            upd.mirror = None
            upd.state = SetState.NEW
            upd.in_flight = False

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def _send_lookup(self, set_name: str) -> None:
        endpoint = self.endpoint
        if endpoint is None:
            return
        upd = self.updaters[set_name]
        upd.state = SetState.LOOKUP_PENDING
        rid = self._next_req_id
        self._next_req_id += 1
        # Lookups are cold-path (once per set per connect, plus retries)
        # so every one is traced when the peer speaks trace-ctx — the
        # serve side records its handling span against the same aux
        # trace id.
        spans = self.daemon.spans
        span = trace = None
        if spans.enabled and endpoint.trace_ok:
            span = (spans.alloc_trace(), spans.alloc())
            trace = ((0, span[0], span[1], HOP_UPDATE),)
        self._pending_lookups[rid] = (set_name, self.daemon.env.now(), span)
        self.stats.lookups_sent += 1
        endpoint.send(
            wire.encode_frame(wire.MsgType.LOOKUP_REQ, rid,
                              wire.pack_lookup_req(set_name), trace)
        )

    def _on_message_locked(self, raw: bytes) -> None:
        with self.daemon.lock:
            self._on_message(raw)

    def _on_message(self, raw: bytes) -> None:
        frame = wire.decode_frame(raw)
        if frame.msg_type == wire.MsgType.DIR_REPLY:
            infos = wire.unpack_dir_reply(frame.payload)
            listed = {info.name for info in infos}
            changed = False
            for info in infos:
                if info.name not in self.updaters:
                    self.updaters[info.name] = UpdaterState(info.name)
                    self._send_lookup(info.name)
                    changed = True
            if changed:
                # Discovery changed what this producer owes per
                # interval; refresh the freshness tracker's set count.
                self._arm_freshness()
            if not self.cfg.sets:
                # Discovery mode: the directory is authoritative, so a
                # set it no longer lists was deleted on the target —
                # drop its updater and mirror instead of polling a dead
                # region forever.
                for name in [n for n in self.updaters if n not in listed]:
                    self._drop_updater(name)
        elif frame.msg_type == wire.MsgType.LOOKUP_REPLY:
            pending = self._pending_lookups.pop(frame.request_id, None)
            if pending is None:
                return
            set_name, t_sent, span = pending
            now = self.daemon.env.now()
            self._h_lookup_rtt.observe(now - t_sent)
            if span is not None:
                self.daemon.spans.record(
                    span[0], span[1], 0, HOP_UPDATE, "lookup", t_sent, now)
            status, region_id, meta = wire.unpack_lookup_reply(frame.payload)
            upd = self.updaters.get(set_name)
            if upd is None:
                return
            if status != wire.E_OK:
                # Set not there yet: retry lookup on the next update loop
                # (paper Fig. 2: "keep performing lookup in the next
                # update loop").
                self.stats.lookups_failed += 1
                upd.state = SetState.NEW
                return
            if upd.mirror is not None:
                self.daemon._unregister_mirror(upd.mirror)
                upd.mirror.delete()
                upd.mirror = None
            try:
                upd.mirror = MetricSet.from_meta(meta, self.daemon.arena,
                                                 pool=self.daemon.set_pool)
            except OutOfMemory:
                # The aggregator's metric-set memory (-m) is exhausted;
                # behave like ldmsd: the set cannot be mirrored until
                # memory frees up, so retry the lookup on later loops.
                self.stats.lookups_failed += 1
                upd.state = SetState.NEW
                return
            upd.region_id = region_id
            upd.state = SetState.READY
            upd.last_dgn = None
            self.daemon._on_lookup_complete(self, upd)

    def _drop_updater(self, name: str) -> None:
        """Remove one collection target set (pruned from DIR)."""
        upd = self.updaters.pop(name, None)
        if upd is None:
            return
        for rid in [r for r, p in self._pending_lookups.items() if p[0] == name]:
            del self._pending_lookups[rid]
        if upd.mirror is not None:
            self.daemon._unregister_mirror(upd.mirror)
            upd.mirror.delete()
            upd.mirror = None
        self.stats.sets_pruned += 1
        self._arm_freshness()

    def _expire_lookups(self) -> None:
        """Fail lookups whose reply never arrived.

        A LOOKUP_REPLY lost on the wire otherwise leaves the updater in
        ``LOOKUP_PENDING`` forever — ``_tick`` only re-looks-up ``NEW``
        sets.  Expiry resets the updater so the next loop retries, per
        Fig. 2's "keep performing lookup in the next update loop".
        """
        if not self._pending_lookups:
            return
        timeout = self.cfg.lookup_timeout
        if timeout is None:
            timeout = 2.0 * self.cfg.interval
        if timeout <= 0:
            return
        now = self.daemon.env.now()
        expired = [rid for rid, p in self._pending_lookups.items()
                   if now - p[1] >= timeout]
        for rid in expired:
            set_name, _t_sent, _span = self._pending_lookups.pop(rid)
            self.stats.lookups_timed_out += 1
            upd = self.updaters.get(set_name)
            if upd is not None and upd.state is SetState.LOOKUP_PENDING:
                upd.state = SetState.NEW

    # ------------------------------------------------------------------
    # the update loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        with self.daemon.lock:
            if self.stopped:
                return
            if not self.connected:
                # Reconnection is the backoff schedule's job; kicking a
                # connect from every tick would defeat it.  Only fire
                # when no retry is pending (e.g. first tick after a
                # passive attach lost its endpoint before backoff armed).
                if (not self.cfg.passive and self._reconnect_handle is None
                        and not self.connecting):
                    self._connect()
                return
            if self._pending_lookups:
                self._expire_lookups()
            if not self.active:
                return
            if not self.updaters and self.endpoint is not None:
                # Discovery found nothing yet (e.g. the target is an
                # aggregator whose own lookups had not completed when we
                # connected): retry the directory query.
                self._ticks_since_dir = 0
                self.endpoint.send(wire.encode_frame(wire.MsgType.DIR_REQ, 0))
                return
            if not self.cfg.sets and self.cfg.dir_refresh > 0:
                self._ticks_since_dir += 1
                if self._ticks_since_dir >= self.cfg.dir_refresh and self.endpoint is not None:
                    # Periodic directory refresh keeps discovery-mode
                    # producers in sync with set deletion on the target.
                    self._ticks_since_dir = 0
                    self.endpoint.send(wire.encode_frame(wire.MsgType.DIR_REQ, 0))
            ready: list[UpdaterState] = []
            # _send_lookup never mutates the updaters dict (frames go
            # out asynchronously), so no defensive copy per tick.
            for upd in self.updaters.values():
                if upd.state is SetState.NEW:
                    self._send_lookup(upd.set_name)
                elif upd.state is SetState.READY:
                    if upd.in_flight:
                        # Bypass non-reporting target; retry next
                        # interval (§IV-E).
                        self.stats.skipped_busy += 1
                        self._c_busy.inc()
                    else:
                        ready.append(upd)
            if not ready:
                return
            if len(ready) == 1:
                self._issue_update(ready[0])
            else:
                # Coalesce every READY set on this producer into one
                # batched fetch: one request/reply frame pair and one
                # update-worker completion amortised over the batch.
                self._issue_update_multi(ready)

    def _issue_update(self, upd: UpdaterState) -> None:
        if upd.in_flight:
            # Bypass non-reporting target; retry next interval (§IV-E).
            self.stats.skipped_busy += 1
            self._c_busy.inc()
            return
        endpoint = self.endpoint
        if endpoint is None:
            return
        upd.in_flight = True
        self.stats.updates_issued += 1
        # One pipeline trace per update transaction; carried through
        # fetch -> validate -> store flush (None when obs is disabled).
        trace = self.daemon.tracer.start(self.cfg.name, upd.set_name)
        t_issue = trace.t_issue if trace is not None else self.daemon.env.now()

        def on_data(data: Optional[bytes]) -> None:
            # Completion runs on an update worker.
            self.daemon.worker_pool.submit(
                lambda: self._complete_update(upd, data, t_issue, trace),
                cost=self.daemon.update_cpu_cost,
                core=self.daemon.core,
                tag="agg-update",
            )

        if trace is not None and endpoint.trace_ok:
            # Exemplar transaction: propagate a wire trace context so the
            # serving daemon can attribute its hop to the same trace.
            trace.span_id = self.daemon.spans.alloc()
            endpoint.rdma_read(
                upd.region_id, on_data,
                trace=((0, trace.trace_id, trace.span_id, HOP_UPDATE),))
        else:
            endpoint.rdma_read(upd.region_id, on_data)

    def _issue_update_multi(self, upds: list[UpdaterState]) -> None:
        """Issue one coalesced fetch covering every updater in ``upds``.

        Each set keeps its own trace and completion validation (exactly
        the per-set semantics of :meth:`_complete_update`); only the wire
        transaction and the worker-pool hand-off are shared.
        """
        endpoint = self.endpoint
        if endpoint is None:
            return
        stats = self.stats
        tracer = self.daemon.tracer
        trace_ok = endpoint.trace_ok
        now = self.daemon.env.now()
        batch: list[tuple[UpdaterState, float, object]] = []
        region_ids: list[int] = []
        tctx = None  # built lazily: most batches carry no exemplar
        for i, upd in enumerate(upds):
            upd.in_flight = True
            stats.updates_issued += 1
            trace = tracer.start(self.cfg.name, upd.set_name)
            if trace is not None and trace_ok:
                trace.span_id = self.daemon.spans.alloc()
                if tctx is None:
                    tctx = []
                tctx.append((i, trace.trace_id, trace.span_id, HOP_UPDATE))
            batch.append((upd, trace.t_issue if trace is not None else now, trace))
            region_ids.append(upd.region_id)
        stats.updates_coalesced += len(upds)
        endpoint.rdma_read_multi(region_ids, partial(self._multi_data, batch),
                                 trace=tuple(tctx) if tctx else None)

    def _multi_data(self, batch, datas) -> None:
        # One update worker reaps the whole batch; simulated CPU is the
        # same per-set charge as N single completions.
        self.daemon.worker_pool.submit(
            partial(self._complete_update_multi, batch, datas),
            cost=self.daemon.update_cpu_cost * len(batch),
            core=self.daemon.core,
            tag="agg-update",
        )

    #: Coalesced batches below this size peek per-set; the numpy
    #: column views cost more than a few struct unpacks.
    _VEC_MIN_PEEK = 4

    def _peek_batch(self, batch, datas) -> list:
        """Vectorized header peek over one coalesced completion batch.

        On the columnar plane every fetched chunk in a coalesced reply
        shares one layout, so MGN validation and the DGN/consistent
        reads collapse into three strided column views over a single
        (n, data_size) matrix — the aggregator-side half of the §IV-D
        skip-on-stale fast path.  Returns one ``(dgn, consistent)`` per
        batch slot, or None where the slot needs the scalar peek (short
        batch, size/MGN mismatch, failed fetch) — the scalar path then
        raises exactly what it always raised.
        """
        n = len(batch)
        peeks: list = [None] * n
        if self.daemon.set_pool is None or n < self._VEC_MIN_PEEK:
            return peeks
        size = None
        idxs = []
        for i, ((upd, _t, _tr), data) in enumerate(zip(batch, datas)):
            mirror = upd.mirror
            if mirror is None or data is None:
                continue
            if size is None:
                size = mirror.data_size
            if mirror.data_size != size or len(data) != size:
                continue
            idxs.append(i)
        if len(idxs) < self._VEC_MIN_PEEK:
            return peeks
        import numpy as np

        mat = np.frombuffer(
            b"".join(datas[i] for i in idxs), dtype=np.uint8
        ).reshape(len(idxs), size)
        mgns = mat[:, 0:4].view("<u4")[:, 0]
        dgns = mat[:, 4:12].view("<u8")[:, 0].tolist()
        flags = mat[:, 12].tolist()
        want = np.fromiter((batch[i][0].mirror.mgn for i in idxs),
                           dtype=np.uint32, count=len(idxs))
        ok = (mgns == want).tolist()
        self.daemon._c_arena_sweeps.inc()
        self.daemon._c_arena_rows.inc(len(idxs))
        for j, i in enumerate(idxs):
            if ok[j]:
                peeks[i] = (dgns[j], flags[j] == 1)
        return peeks

    def _complete_update_multi(self, batch, datas) -> None:
        if datas is None:
            datas = [None] * len(batch)
        peeks = self._peek_batch(batch, datas)
        for (upd, t_issue, trace), data, peek in zip(batch, datas, peeks):
            self._complete_update(upd, data, t_issue, trace, peek)

    def _complete_update(
        self, upd: UpdaterState, data: Optional[bytes], t_issue: float,
        trace=None, peek: Optional[tuple[int, bool]] = None,
    ) -> None:
        with self.daemon.lock:
            tracer = self.daemon.tracer
            upd.in_flight = False
            if self.stopped or upd.mirror is None:
                tracer.finish(trace, "failed")
                return
            now = self.daemon.env.now()
            if trace is not None:
                trace.t_fetched = now
            if data is None:
                self.stats.updates_failed += 1
                self._c_failed.inc()
                tracer.finish(trace, "failed")
                return
            self.stats.updates_completed += 1
            self.stats.last_update_ts = now
            self.stats.update_time_total += now - t_issue
            self._h_update_rtt.observe(now - t_issue)
            # Fast-path validation: peek MGN/DGN/consistent straight
            # from the fetched buffer, so torn or DGN-unchanged fetches
            # are dropped before any data copy (paper §IV-A: neither
            # results in a write).
            try:
                if peek is not None:
                    dgn, consistent = peek
                else:
                    dgn, consistent = upd.mirror.peek_data_header(data)
            except SchemaMismatch:
                # Metadata changed on the producer; refresh it.
                self.stats.schema_refreshes += 1
                self._send_lookup(upd.set_name)
                tracer.finish(trace, "schema_refresh")
                return
            except ValueError:
                # Malformed fetch (e.g. the producer deleted the set and
                # the region now reads empty): count as failed, retry via
                # lookup next tick.
                self.stats.updates_failed += 1
                self._c_failed.inc()
                upd.state = SetState.NEW
                tracer.finish(trace, "failed")
                return
            if trace is not None:
                trace.t_validated = now
            if not consistent:
                self.stats.skipped_inconsistent += 1
                self._c_torn.inc()
                tracer.finish(trace, "torn")
                return
            if upd.last_dgn is not None and dgn == upd.last_dgn:
                self.stats.skipped_stale += 1
                self._c_stale.inc()
                tracer.finish(trace, "stale")
                return
            prev_dgn = upd.last_dgn
            upd.mirror._install(data, dgn, consistent)
            upd.last_dgn = dgn
            if trace is not None:
                trace.sample_ts = upd.mirror.timestamp
            # `stored` counts records actually handed to the store
            # layer; incrementing before delivery over-reported when
            # the hand-off itself failed.
            try:
                self.daemon._deliver_to_stores(self, upd.mirror, trace)
            except StoreError:
                self.daemon._c_store_errors.inc()
                tracer.finish(trace, "store_error")
                return
            self.stats.stored += 1
            tracer.finish(trace, "stored")
            fresh = self._fresh
            if fresh is not None:
                # Missed-interval hint: whichever of the DGN gap (in
                # learned per-transaction strides) and the transaction-
                # timestamp gap is larger — both per-set evidence already
                # in hand, no extra wire bytes.
                ts_new = upd.mirror.timestamp
                missed = 0
                if prev_dgn is not None and dgn > prev_dgn:
                    delta = dgn - prev_dgn
                    stride = upd.dgn_stride
                    if stride == 0 or delta < stride:
                        upd.dgn_stride = stride = delta
                    missed = delta // stride - 1
                last_ts = upd.last_stored_ts
                if last_ts > 0.0 and self.cfg.interval > 0.0:
                    gap = int((ts_new - last_ts) / self.cfg.interval + 0.5) - 1
                    if gap > missed:
                        missed = gap
                upd.last_stored_ts = ts_new
                fresh.observe(ts_new, missed)
            if trace is not None and trace.span_id is not None:
                # The aggregator-side hop of the exemplar's causal
                # chain: issue -> validated-and-stored.
                self.daemon.spans.record(
                    trace.trace_id, trace.span_id, 0, HOP_UPDATE,
                    "update", t_issue, now)
