"""The ldmsd daemon.

One multi-threaded daemon codebase covers both roles (paper §IV-B: "the
host daemon is the same base code in all cases; differentiation is
based on configuration"):

* **sampler mode** — load sampler plugins, publish their metric sets,
  serve DIR/LOOKUP and one-sided data reads to aggregators;
* **aggregator mode** — add producers to pull from, mirror their sets,
  validate updates, and feed store plugins.  Aggregated mirrors are
  themselves published, so aggregators daisy-chain to any depth.

Thread pools (§IV-B): a common *worker* pool runs sampling and update
completion, a separate *connection* pool performs connection setup (so
hosts hung in connect timeout cannot starve collection), and a *flush*
pool writes to stores.

The daemon runs identically on real threads (``RealEnv`` — used by the
examples over real TCP) and inside the discrete-event simulator
(``SimEnv`` — used for cluster-scale studies).
"""

from __future__ import annotations

import dataclasses
import os
from functools import partial
from typing import Optional

from repro.core import sanitize, wire
from repro.core.aggregator import Producer, ProducerConfig
from repro.core.env import Env, RealEnv, SimEnv
from repro.core.memory import Arena
from repro.core.metric import MetricType
from repro.core.metric_set import MetricSet, SetInfo
from repro.core.sampler import SamplerPlugin, sampler_registry
from repro.core.store import StorePlugin, StorePolicy, StoreRecord, store_registry
from repro.obs import (
    FlightRecorder,
    FreshnessTracker,
    SpanRecorder,
    Telemetry,
    Tracer,
)
from repro.obs import flight as flightmod
from repro.obs.spans import HOP_SAMPLE, HOP_STORE
from repro.sim.resources import CpuCore
from repro.sim.shard import runtime_snapshot as shard_runtime_snapshot
from repro.transport.base import Endpoint, Listener, Transport
from repro.util.errors import ConfigError, OutOfMemory, StoreError
from repro.util.rngtools import stable_seed
from repro.util.units import parse_size

__all__ = ["Ldmsd"]

#: Simulated CPU cost of processing one completed update (validation +
#: record construction), excluding transport costs.
UPDATE_CPU_COST = 5e-6
#: Simulated CPU cost of one connection-setup attempt.
CONNECT_CPU_COST = 50e-6
#: Simulated store cost: per record base + per metric formatting cost.
STORE_BASE_COST = 10e-6
STORE_PER_METRIC_COST = 4e-6
#: Simulated query-serving cost: per request base (parse + index
#: bisect) + per returned row (record decode + serialization).  The
#: query runs on the worker pool, so p95/p99 under load reflect pool
#: contention with the update pipeline.
QUERY_BASE_COST = 20e-6
QUERY_PER_ROW_COST = 0.2e-6


class _SamplerSchedule:
    def __init__(self, plugin: SamplerPlugin, interval: float, handle):
        self.plugin = plugin
        self.interval = interval
        self.handle = handle


def _batch_flush_default() -> bool:
    return os.environ.get("REPRO_BATCH_FLUSH", "1") not in ("0", "false", "off")


class _StagedRow:
    """A store delivery staged as a raw arena-row snapshot.

    On the columnar path the aggregator defers record construction to
    the flush batch, where all staged rows of one schema decode as a
    single 2-D array sweep.  The snapshot is taken at delivery time, so
    a mirror re-installed before the flush drains cannot retroactively
    change what gets stored.  ``values = None`` marks the row as staged
    for :meth:`_FlushBatch.seal`, which prices it by ``card`` exactly
    like a materialized record.
    """

    __slots__ = ("data", "ts", "producer", "schema", "card", "mirror")

    values = None

    def __init__(self, data: bytes, ts: float, producer: str, mirror: MetricSet):
        self.data = data
        self.ts = ts
        self.producer = producer
        self.schema = mirror.schema
        self.card = mirror.card
        self.mirror = mirror


class _FlushBatch:
    """Pending rows for one store, drained in bulk by a flush task.

    ``seal()`` runs when a flush worker is acquired: it claims up to
    ``maxrows`` pending rows and returns their summed simulated cost
    (identical to what the per-record path would have charged, so pool
    busy-time accounting — the §IV-D utilization numbers — is
    unchanged; only the heap-event count per row collapses).
    """

    __slots__ = ("store", "maxrows", "rows", "sealed", "scheduled")

    def __init__(self, store: StorePlugin, maxrows: int):
        self.store = store
        self.maxrows = maxrows
        #: pending (record, t_submit, trace) rows, append order
        self.rows: list[tuple] = []
        self.sealed: Optional[list[tuple]] = None
        self.scheduled = False

    def seal(self) -> float:
        rows = self.rows
        if len(rows) <= self.maxrows:
            self.sealed = rows
            self.rows = []
        else:
            self.sealed = rows[: self.maxrows]
            self.rows = rows[self.maxrows:]
        cost = STORE_BASE_COST * len(self.sealed)
        for record, _t, _tr in self.sealed:
            vals = record.values
            cost += STORE_PER_METRIC_COST * (
                record.card if vals is None else len(vals)
            )
        return cost


class Ldmsd:
    """An LDMS daemon instance.

    Parameters
    ----------
    name:
        Daemon name (used as the producer name when peers pull from it
        and in store records).
    env:
        Execution environment.  Defaults to a private :class:`RealEnv`.
    transports:
        Mapping of transport name -> :class:`Transport` instance the
        daemon may listen/connect with.  Defaults to a private real
        ``sock`` transport under RealEnv; must be provided for SimEnv.
    mem:
        Size of the metric-set arena (the ldmsd ``-m`` option), e.g.
        ``"2MB"``.  Set creation fails when exhausted.
    workers / conn_threads / flush_threads:
        Pool sizes (§IV-B: worker pool typically no larger than the
        host's core count).
    core:
        Simulated CPU core that this daemon's work is charged to (noise
        accounting); None outside the simulator.
    obs_enabled:
        Whether the daemon's self-instrumentation registry
        (:class:`repro.obs.Telemetry`) and pipeline tracer are live.
        Disabled, every hook degrades to a shared no-op instrument and
        the update path allocates no trace objects.
    batch_flush:
        Coalesce store deliveries into per-store batches drained whole
        by one flush-pool task (the vectorized flush path).  Default is
        on; ``REPRO_BATCH_FLUSH=0`` turns it off process-wide (for
        A/B determinism and regression benchmarks).
    flush_batch_max:
        Upper bound on rows drained per flush-task wakeup (bounds the
        in-memory batch buffer).
    """

    def __init__(
        self,
        name: str,
        env: Optional[Env] = None,
        transports: Optional[dict[str, Transport]] = None,
        mem: str | int = "2MB",
        workers: int = 4,
        conn_threads: int = 2,
        flush_threads: int = 2,
        core: Optional[CpuCore] = None,
        fs=None,
        obs_enabled: bool = True,
        batch_flush: Optional[bool] = None,
        flush_batch_max: int = 256,
    ):
        self.name = name
        self._own_env = env is None
        if env is None:
            env = RealEnv()
        self.env = env
        if transports is None:
            if isinstance(env, SimEnv):
                raise ConfigError("SimEnv daemons must be given sim transports")
            from repro.transport.sock import SockTransport

            transports = {"sock": SockTransport()}
        self.transports = dict(transports)
        self.core = core
        if fs is None:
            from repro.nodefs.fs import RealFS

            fs = RealFS()
        #: Filesystem sampler plugins read node counters through
        #: (RealFS on a live host, SynthFS in the simulator).
        self.fs = fs
        self.arena = Arena(parse_size(mem))
        self.lock = env.make_lock()

        #: Self-instrumentation: the telemetry registry and the
        #: per-update-transaction tracer.  Hot-path instruments are
        #: bound once here so sampling/update/store code pays one
        #: attribute access per event, not a registry lookup.
        self.obs = Telemetry(enabled=obs_enabled)
        self.tracer = Tracer(env.now, enabled=obs_enabled)
        #: Observability plane (PR 7): the per-hop span ring feeding
        #: Chrome trace export, the per-producer freshness tracker (only
        #: populated on daemons with producers), and the always-on
        #: flight recorder behind postmortem dumps.  All three follow
        #: the registry's discipline: disabled means no-op hot paths.
        self.spans = SpanRecorder(name, enabled=obs_enabled)
        self.freshness = FreshnessTracker(enabled=obs_enabled)
        self.flight = FlightRecorder(name, enabled=obs_enabled)
        flightmod.register_daemon(self)
        self.flight.record(env.now(), "daemon", "start")
        if sanitize.enabled():
            # REPRO_SANITIZE=count routes discipline violations into
            # this registry (ldmsd_self exports the aggregate).
            sanitize.register_registry(self.obs)
        self._h_sample = self.obs.histogram("sample.duration")
        self._h_store_flush = self.obs.histogram("store.flush")
        self._h_flush_batch_rows = self.obs.histogram("store.flush_batch_rows")
        self._h_sample_to_store = self.obs.histogram("pipeline.sample_to_store")
        self._c_flush_rows_batched = self.obs.counter("store.flush_rows_batched")
        self._c_samples = self.obs.counter("sampler.samples")
        self._c_set_create_failed = self.obs.counter("set.create_failed")
        self._c_store_errors = self.obs.counter("store.errors")
        self._c_store_no_match = self.obs.counter("store.no_match")
        self._c_dir_req = self.obs.counter("serve.dir_req")
        self._c_lookup_req = self.obs.counter("serve.lookup_req")
        self._c_update_req = self.obs.counter("serve.update_req")
        self._c_query_req = self.obs.counter("serve.query_req")
        self._h_query = self.obs.histogram("serve.query")
        self._c_arena_sweeps = self.obs.counter("arena.sweeps")
        self._c_arena_rows = self.obs.counter("arena.rows_vectorized")
        self._c_arena_fallback = self.obs.counter("arena.fallback_sets")

        #: Columnar data plane (REPRO_ARENA): the environment-wide
        #: set-arena pool and sampler-cohort scheduler, or None when
        #: reverted / under RealEnv.  All sets this daemon creates or
        #: mirrors are arena-row-backed when the pool is present.
        self.set_pool = getattr(env, "set_arena_pool", None)
        self._cohort_scheduler = getattr(env, "cohort_scheduler", None)

        self.worker_pool = env.make_pool(f"{name}/worker", workers)
        self.conn_pool = env.make_pool(f"{name}/conn", conn_threads)
        self.flush_pool = env.make_pool(f"{name}/flush", flush_threads)

        self.update_cpu_cost = UPDATE_CPU_COST
        self.connect_cpu_cost = CONNECT_CPU_COST
        self.batch_flush = (_batch_flush_default() if batch_flush is None
                            else bool(batch_flush))
        self.flush_batch_max = int(flush_batch_max)
        self._flush_batches: dict[StorePlugin, _FlushBatch] = {}

        self._sets: dict[str, MetricSet] = {}
        self._region_ids: dict[str, int] = {}
        self._region_names: dict[int, str] = {}
        self._next_region = 1
        self._plugins: dict[str, SamplerPlugin] = {}
        self._schedules: dict[str, _SamplerSchedule] = {}
        self.producers: dict[str, Producer] = {}
        self.stores: list[StorePlugin] = []
        #: Bumped by add_store; invalidates per-mirror store-match caches.
        self._stores_version = 0
        self._listeners: list[Listener] = []
        self._served_endpoints: list[Endpoint] = []
        #: advertisement name -> mutable state shared with its retry
        #: loop ({"stopped", "attempts", "endpoint"}).
        self._advertisements: dict[str, dict] = {}
        self.records_delivered = 0
        #: Serving tier (PR 9): the query engine over this daemon's SOS
        #: store, or None until :meth:`enable_query`.
        self.query_engine = None
        self._shutdown = False

    # ------------------------------------------------------------------
    # set registry
    # ------------------------------------------------------------------
    def create_set(
        self, name: str, schema: str, metrics: list[tuple[str, MetricType, int]]
    ) -> MetricSet:
        """Create and publish a metric set (sampler plugins call this)."""
        with self.lock:
            if name in self._sets:
                raise ConfigError(f"metric set {name!r} already exists")
            try:
                mset = MetricSet.create(name, schema, metrics, self.arena,
                                        pool=self.set_pool)
            except OutOfMemory:
                # Arena exhaustion is an operator-visible event (the
                # paper sizes set memory up front, §IV-B): count it so
                # ldmsd_self exposes it, then re-raise for the caller.
                self._c_set_create_failed.inc()
                raise
            self._sets[name] = mset
            return mset

    def delete_set(self, name: str) -> None:
        with self.lock:
            mset = self._sets.pop(name, None)
            if mset is not None:
                self._region_ids.pop(name, None)
                mset.delete()

    def get_set(self, name: str) -> Optional[MetricSet]:
        return self._sets.get(name)

    def set_names(self) -> list[str]:
        return sorted(self._sets)

    def dir_info(self) -> list[SetInfo]:
        return [s.info() for s in self._sets.values()]

    def _register_mirror(self, mset: MetricSet) -> None:
        """Publish an aggregated mirror so higher levels can pull it."""
        if mset.name not in self._sets:
            self._sets[mset.name] = mset

    def _unregister_mirror(self, mset: MetricSet) -> None:
        if self._sets.get(mset.name) is mset:
            del self._sets[mset.name]
            self._region_ids.pop(mset.name, None)

    def _on_lookup_complete(self, producer: Producer, upd) -> None:
        self._register_mirror(upd.mirror)

    # ------------------------------------------------------------------
    # sampler side
    # ------------------------------------------------------------------
    def load_sampler(self, plugin_name: str, **cfg) -> SamplerPlugin:
        """Load and configure a sampler plugin.

        ``cfg`` must include ``instance=`` (unique per daemon) and
        normally ``component_id=``; remaining keys go to the plugin's
        ``config()``.
        """
        if plugin_name not in sampler_registry:
            import repro.plugins  # noqa: F401  (registers built-ins)
        try:
            cls = sampler_registry[plugin_name]
        except KeyError:
            raise ConfigError(
                f"unknown sampler plugin {plugin_name!r}; loaded registry has "
                f"{sorted(sampler_registry)}"
            ) from None
        with self.lock:
            plugin = cls(self)
            plugin.config(**cfg)
            if plugin.instance in self._plugins:
                raise ConfigError(f"sampler instance {plugin.instance!r} already loaded")
            self._plugins[plugin.instance] = plugin
            return plugin

    def start_sampler(
        self, instance: str, interval: float, offset: Optional[float] = None
    ) -> None:
        """Begin periodic sampling.

        ``offset`` non-None selects synchronous (wall-aligned) sampling;
        the paper notes this bounds the number of application iterations
        perturbed across nodes (§V-A1).  The sampling frequency can be
        changed on the fly by calling ``stop_sampler`` + ``start_sampler``.
        """
        with self.lock:
            plugin = self._require_plugin(instance)
            if instance in self._schedules:
                raise ConfigError(f"sampler {instance!r} already started")

            # Bind the per-tick constants once: the plugin's set layout
            # is frozen at config(), so sample_cost is loop-invariant,
            # and the begin/finish callables need not be rebuilt per
            # firing.
            sample_cost = plugin.sample_cost

            # Columnar fast path: same-phase, same-pattern samplers ride
            # one cohort sweep (one timer + one finish event for the
            # whole node class) instead of per-instance events.  The
            # scalar path below is the REPRO_ARENA=0 behavior and the
            # fallback for anything the sweep cannot vectorize.
            sched = self._cohort_scheduler
            if sched is not None:
                veckey = plugin.cohort_key()
                mset = plugin._sets[0] if len(plugin._sets) == 1 else None
                if (veckey is not None and mset is not None
                        and mset._ab is not None
                        and mset._ab.values_mat is not None
                        and sample_cost < interval):
                    handle = sched.register(
                        self, plugin, interval,
                        synchronous=offset is not None,
                        offset=offset or 0.0,
                        cost=sample_cost, veckey=veckey,
                    )
                    self._schedules[instance] = _SamplerSchedule(
                        plugin, interval, handle
                    )
                    return
                # Arena on but this sampler can't ride a cohort sweep
                # (no vectorization key, multi-set, mixed layout, or
                # cost >= interval): it stays on the scalar path.
                self._c_arena_fallback.inc()

            begin = partial(self._begin_sample, plugin)
            finish = partial(self._finish_sample, plugin)
            submit = self.worker_pool.submit
            core = self.core

            def fire() -> None:
                submit(finish, cost=sample_cost, core=core, tag="sampler",
                       on_start=begin)

            handle = self.env.call_every(
                interval, fire, synchronous=offset is not None, offset=offset or 0.0
            )
            self._schedules[instance] = _SamplerSchedule(plugin, interval, handle)

    def stop_sampler(self, instance: str) -> None:
        with self.lock:
            sched = self._schedules.pop(instance, None)
            if sched is None:
                raise ConfigError(f"sampler {instance!r} is not started")
            sched.handle.cancel()

    def sampler_plugins(self) -> dict[str, SamplerPlugin]:
        return dict(self._plugins)

    def _require_plugin(self, instance: str) -> SamplerPlugin:
        try:
            return self._plugins[instance]
        except KeyError:
            raise ConfigError(f"no sampler instance {instance!r}") from None

    def _begin_sample(self, plugin: SamplerPlugin) -> None:
        with self.lock:
            plugin._sample_t0 = self.env.now()
            plugin.begin_sample()

    def _finish_sample(self, plugin: SamplerPlugin) -> None:
        with self.lock:
            end = self.env.now()
            plugin.finish_sample(end)
            # Sample duration: the begin->finish busy window.  Under the
            # DES this is the declared sample cost; under RealEnv it is
            # the measured wall time of do_sample.
            duration = end - plugin._sample_t0
            plugin.last_sample_ts = end
            plugin.last_sample_dur = duration
            plugin.sample_time_total += duration
            self._h_sample.observe(duration)
            self._c_samples.inc()

    # ------------------------------------------------------------------
    # serving (any daemon can be pulled from)
    # ------------------------------------------------------------------
    def listen(self, xprt: str, addr) -> Listener:
        """Listen for incoming aggregator connections on a transport."""
        transport = self._transport(xprt)
        listener = transport.listen(addr, self._on_peer_connect)
        self._listeners.append(listener)
        return listener

    def _transport(self, xprt: str) -> Transport:
        try:
            return self.transports[xprt]
        except KeyError:
            raise ConfigError(
                f"daemon {self.name!r} has no transport {xprt!r}; "
                f"configured: {sorted(self.transports)}"
            ) from None

    def _on_peer_connect(self, endpoint: Endpoint) -> None:
        endpoint.obs = self.obs
        endpoint.on_message = lambda raw: self._serve(endpoint, raw)
        # Observability plane: daemon clock for the transport HELLO /
        # peer-age anchor, and the serve-side traced-read hook.  Both
        # must be installed before the transport starts reading.
        endpoint.clock = self.env.now
        endpoint.on_traced_read = self._on_traced_read
        self.flight.record(self.env.now(), "conn", "peer_connect",
                           len(self._served_endpoints))
        if self.set_pool is not None:
            # Columnar serve path: coalesced reads gather every
            # same-layout region with one tobytes() sweep.
            endpoint.set_multi_reader(self._read_regions)
        # Prune on close, or served endpoints accumulate forever on a
        # long-lived daemon whose peers churn.
        endpoint.on_close = lambda: self._drop_served(endpoint)
        self._served_endpoints.append(endpoint)

    def _drop_served(self, endpoint: Endpoint) -> None:
        with self.lock:
            if endpoint in self._served_endpoints:
                self._served_endpoints.remove(endpoint)
                self.flight.record(self.env.now(), "conn", "peer_close",
                                   len(self._served_endpoints))

    def _on_traced_read(self, trace_id: int, parent_span: int, hop: int,
                        region_id: int) -> None:
        """Serve-side half of wire-level trace propagation.

        Invoked by the transport once per trace-context entry on an
        inbound traced read.  Records the serve span (hop 1, parented on
        the aggregator's update span) and — when this daemon sampled the
        set itself — the sample span (hop 0) of the transaction whose
        bytes the read returns, anchored on the set's transaction
        timestamp.  Exemplar-rate only, so allocation here is fine.
        """
        spans = self.spans
        if not spans.enabled:
            return
        now = self.env.now()
        serve_sid = spans.alloc()
        spans.record(trace_id, serve_sid, parent_span,
                     hop - 1 if hop > 1 else 1, "serve_read", now, now)
        set_name = self._region_names.get(region_id)
        mset = self._sets.get(set_name) if set_name is not None else None
        if mset is None:
            return
        ts = mset.timestamp
        if ts <= 0.0:
            return
        for plugin in self._plugins.values():
            if mset in plugin._sets:
                dur = getattr(plugin, "last_sample_dur", 0.0)
                spans.record(trace_id, spans.alloc(), serve_sid, HOP_SAMPLE,
                             "sample", ts - dur, ts)
                return

    def _serve(self, endpoint: Endpoint, raw: bytes) -> None:
        with self.lock:
            frame = wire.decode_frame(raw)
            if frame.msg_type == wire.MsgType.ADVERTISE:
                # A sampler initiated this connection (passive mode);
                # hand the endpoint to the matching producer.
                peer_name = wire.unpack_advertise(frame.payload)
                prod = self.producers.get(peer_name)
                if prod is not None and prod.cfg.passive:
                    if endpoint in self._served_endpoints:
                        self._served_endpoints.remove(endpoint)
                    prod.attach(endpoint)
                return
            if frame.msg_type == wire.MsgType.DIR_REQ:
                self._c_dir_req.inc()
                endpoint.send(
                    wire.encode_frame(
                        wire.MsgType.DIR_REPLY,
                        frame.request_id,
                        wire.pack_dir_reply(self.dir_info()),
                    )
                )
            elif frame.msg_type == wire.MsgType.LOOKUP_REQ:
                self._c_lookup_req.inc()
                set_name = wire.unpack_lookup_req(frame.payload)
                if frame.trace is not None and self.spans.enabled:
                    now = self.env.now()
                    for _idx, tid, sid, hop in frame.trace:
                        self.spans.record(tid, self.spans.alloc(), sid,
                                          hop - 1 if hop > 1 else 1,
                                          "serve_lookup", now, now)
                mset = self._sets.get(set_name)
                if mset is None:
                    reply = wire.pack_lookup_reply(wire.E_NOENT)
                else:
                    region_id = self._region_id_for(set_name)
                    if region_id not in getattr(endpoint, "_regions"):
                        endpoint.register_region(
                            region_id, lambda n=set_name: self._read_region(n)
                        )
                    reply = wire.pack_lookup_reply(
                        wire.E_OK, region_id, mset.meta_bytes()
                    )
                endpoint.send(
                    wire.encode_frame(wire.MsgType.LOOKUP_REPLY, frame.request_id, reply)
                )
            elif frame.msg_type == wire.MsgType.UPDATE_REQ:
                # Message-based pull path (kept for completeness; the
                # aggregator normally uses one-sided reads).
                self._c_update_req.inc()
                region_id = wire.unpack_update_req(frame.payload)
                name = next(
                    (n for n, r in self._region_ids.items() if r == region_id), None
                )
                mset = self._sets.get(name) if name is not None else None
                if mset is None:
                    reply = wire.pack_update_reply(wire.E_NOENT)
                else:
                    reply = wire.pack_update_reply(wire.E_OK, mset.data_bytes())
                endpoint.send(
                    wire.encode_frame(wire.MsgType.UPDATE_REPLY, frame.request_id, reply)
                )
            elif frame.msg_type == wire.MsgType.QUERY_REQ:
                self._c_query_req.inc()
                self._serve_query(endpoint, frame)

    def _serve_query(self, endpoint: Endpoint, frame: wire.Frame) -> None:
        """Answer a QUERY_REQ on the worker pool.

        The scan itself prices the task: the pool cost is a callable
        that runs the query when the worker is granted and returns
        ``QUERY_BASE_COST + QUERY_PER_ROW_COST x rows``, so the reply
        leaves at the end of a busy window sized by the actual result —
        and served latency quantiles include queueing behind the update
        pipeline on the same pool.  (RealEnv pools never evaluate the
        cost callable; the reply closure runs the query there.)
        """
        eng = self.query_engine
        rid = frame.request_id
        if eng is None:
            endpoint.send(wire.encode_frame(
                wire.MsgType.QUERY_REPLY, rid,
                wire.pack_query_reply(wire.E_NOENT)))
            return
        schema, t0, t1, level, comp_id, max_records = wire.unpack_query_req(
            frame.payload)
        t_start = self.env.now()
        holder: list = []

        def run_query() -> float:
            res = eng.query(schema, t0, t1, level=level, comp_id=comp_id,
                            max_records=max_records)
            holder.append(res)
            return QUERY_BASE_COST + QUERY_PER_ROW_COST * len(res.rows)

        def reply() -> None:
            with self.lock:
                if not holder:
                    holder.append(eng.query(schema, t0, t1, level=level,
                                            comp_id=comp_id,
                                            max_records=max_records))
                res = holder[0]
                self._h_query.observe(self.env.now() - t_start)
                if not endpoint.closed:
                    endpoint.send(wire.encode_frame(
                        wire.MsgType.QUERY_REPLY, rid,
                        wire.pack_query_reply(res.status, res.names,
                                              res.rows, res.flags())))

        self.worker_pool.submit(reply, cost=run_query, core=self.core,
                                tag="query")

    def enable_query(self, store=None, hot_window: float = 60.0,
                     cache_entries: int = 256):
        """Attach the query/serving tier to this daemon's SOS store.

        ``store=None`` picks the first configured
        :class:`~repro.plugins.stores.sos.SosStore`.  Served queries
        arrive as feature-gated ``QUERY_REQ`` frames on any listening
        transport and run on the worker pool.
        """
        from repro.plugins.stores.sos import SosStore
        from repro.query.engine import QueryEngine

        with self.lock:
            if store is None:
                store = next(
                    (s for s in self.stores if isinstance(s, SosStore)), None)
            if store is None:
                raise ConfigError(
                    f"{self.name}: enable_query needs a configured sos store")
            self.query_engine = QueryEngine(
                store, self.env.now, obs=self.obs,
                hot_window=hot_window, cache_entries=cache_entries)
            return self.query_engine

    def _region_id_for(self, set_name: str) -> int:
        rid = self._region_ids.get(set_name)
        if rid is None:
            rid = self._next_region
            self._next_region += 1
            self._region_ids[set_name] = rid
            # Append-only reverse map: an endpoint's registered reader
            # closure survives set deletion (it reads by name), so the
            # batch reader must keep resolving old region ids the same
            # way for as long as the daemon lives.
            self._region_names[rid] = set_name
        return rid

    def _read_region(self, set_name: str) -> bytes:
        mset = self._sets.get(set_name)
        return mset.data_bytes() if mset is not None else b""

    def _read_regions(self, region_ids, registered) -> list:
        """Batch serve: serialize coalesced-read regions in one sweep.

        Same-schema sets on this daemon are rows of one columnar block,
        so the reply frames of an ``rdma_read_multi`` gather as a single
        fancy-index + ``tobytes()`` over the block instead of one
        ``bytes(view)`` copy per set.  Output is byte-identical to
        calling each region's registered reader: regions not registered
        on this endpoint come back None, deleted sets come back ``b""``.
        """
        out: list = [None] * len(region_ids)
        names = self._region_names
        sets = self._sets
        groups: dict = {}
        for i, rid in enumerate(region_ids):
            if rid not in registered:
                continue
            mset = sets.get(names.get(rid))
            if mset is None:
                out[i] = b""
                continue
            ab = mset._ab
            if ab is None:
                out[i] = mset.data_bytes()
                continue
            if mset._shadow is not None:
                sanitize.check(mset, "data_bytes")
            entry = groups.get(ab)
            if entry is None:
                entry = groups[ab] = ([], [])
            entry[0].append(i)
            entry[1].append(mset._arow)
        for ab, (idxs, arows) in groups.items():
            if len(idxs) == 1:
                out[idxs[0]] = ab.block[arows[0]].tobytes()
                continue
            blob = ab.block[arows].tobytes()
            size = ab.data_size
            for j, i in enumerate(idxs):
                out[i] = blob[j * size:(j + 1) * size]
            self._c_arena_sweeps.inc()
            self._c_arena_rows.inc(len(idxs))
        return out

    # ------------------------------------------------------------------
    # aggregator side
    # ------------------------------------------------------------------
    def add_producer(
        self,
        name: str,
        xprt: str,
        addr=None,
        interval: float = 20.0,
        sets: tuple[str, ...] = (),
        offset: Optional[float] = None,
        standby: bool = False,
        reconnect_interval: float = 2.0,
        reconnect_max: float = 60.0,
        lookup_timeout: Optional[float] = None,
        dir_refresh: int = 5,
        passive: bool = False,
    ) -> Producer:
        """Add a collection target.

        Active producers (the default) begin connecting immediately.
        Passive producers wait for the named peer to connect to one of
        this daemon's listeners and send an ADVERTISE — the §IV-B
        asymmetric-network mode where the sampler initiates.  Multiple
        producers may point at the same address with different set
        lists and intervals ("multiple connections may be established
        between an aggregator and a single collection target").
        """
        with self.lock:
            if name in self.producers:
                raise ConfigError(f"producer {name!r} already exists")
            self._transport(xprt)  # validate early
            if addr is None and not passive:
                raise ConfigError("active producers require addr=")
            cfg = ProducerConfig(
                name=name,
                xprt=xprt,
                addr=addr,
                interval=float(interval),
                sets=tuple(sets),
                offset=offset,
                standby=standby,
                reconnect_interval=reconnect_interval,
                reconnect_max=reconnect_max,
                lookup_timeout=lookup_timeout,
                dir_refresh=dir_refresh,
                passive=passive,
            )
            prod = Producer(self, cfg)
            self.producers[name] = prod
            prod.start()
            return prod

    def advertise(
        self,
        xprt: str,
        addr,
        name: Optional[str] = None,
        reconnect_interval: float = 2.0,
        reconnect_max: float = 60.0,
    ) -> str:
        """Sampler side of passive mode: connect to an aggregator,
        announce this daemon by name, and serve the pull protocol on
        that connection.  Reconnects with capped, deterministically
        jittered exponential backoff while the aggregator is away;
        :meth:`stop_advertise` (or :meth:`shutdown`) retires the loop
        and closes the advertised endpoint.  Returns the advertised
        name, the handle ``stop_advertise`` takes."""
        adv_name = name or self.name
        transport = self._transport(xprt)
        with self.lock:
            if adv_name in self._advertisements:
                raise ConfigError(f"already advertising as {adv_name!r}")
            state: dict = {"stopped": False, "attempts": 0, "endpoint": None}
            self._advertisements[adv_name] = state

        def retry() -> None:
            # Same backoff shape as Producer._reconnect_delay, keyed to
            # the advertised name so a fleet of samplers that lost one
            # aggregator does not redial in lockstep.
            raw = min(reconnect_interval * (2.0 ** min(state["attempts"], 20)),
                      reconnect_max)
            j = (stable_seed("advertise", adv_name, state["attempts"]) % 1000) / 1000.0
            state["attempts"] += 1
            self.env.call_later(raw * (1.0 - 0.25 * j), schedule)

        def on_closed(endpoint: Endpoint) -> None:
            with self.lock:
                state["endpoint"] = None
                self._drop_served(endpoint)
                if not (self._shutdown or state["stopped"]):
                    retry()

        def on_connected(endpoint: Optional[Endpoint]) -> None:
            with self.lock:
                if self._shutdown or state["stopped"]:
                    if endpoint is not None:
                        endpoint.close()
                    return
                if endpoint is None:
                    retry()
                    return
                state["attempts"] = 0
                state["endpoint"] = endpoint
                endpoint.obs = self.obs
                endpoint.on_message = lambda raw: self._serve(endpoint, raw)
                endpoint.on_close = lambda: on_closed(endpoint)
                self._served_endpoints.append(endpoint)
                endpoint.send(
                    wire.encode_frame(wire.MsgType.ADVERTISE, 0,
                                      wire.pack_advertise(adv_name))
                )

        def attempt() -> None:
            transport.connect(addr, on_connected)

        def schedule() -> None:
            if self._shutdown or state["stopped"]:
                return
            self.conn_pool.submit(attempt, cost=self.connect_cpu_cost,
                                  core=self.core, tag="advertise")

        schedule()
        return adv_name

    def stop_advertise(self, name: Optional[str] = None) -> None:
        """Retire an advertisement: no further reconnect attempts, and
        the advertised endpoint (if up) is closed and pruned."""
        adv_name = name or self.name
        with self.lock:
            state = self._advertisements.pop(adv_name, None)
            if state is None:
                raise ConfigError(f"not advertising as {adv_name!r}")
            state["stopped"] = True
            endpoint = state["endpoint"]
        if endpoint is not None and not endpoint.closed:
            endpoint.close()

    def remove_producer(self, name: str) -> None:
        with self.lock:
            prod = self.producers.pop(name, None)
            if prod is None:
                raise ConfigError(f"no producer {name!r}")
            prod.stop()

    def activate_standby(self, name: str) -> None:
        """Promote a standby producer (driven by an external watchdog)."""
        with self.lock:
            prod = self.producers.get(name)
            if prod is None:
                raise ConfigError(f"no producer {name!r}")
            prod.activate()

    # ------------------------------------------------------------------
    # store side
    # ------------------------------------------------------------------
    def add_store(
        self,
        plugin_name: str,
        schema: Optional[str] = None,
        producers: Optional[tuple[str, ...]] = None,
        metrics: Optional[tuple[str, ...]] = None,
        **cfg,
    ) -> StorePlugin:
        """Instantiate a store plugin with a matching policy."""
        if plugin_name not in store_registry:
            import repro.plugins  # noqa: F401  (registers built-ins)
        try:
            cls = store_registry[plugin_name]
        except KeyError:
            raise ConfigError(
                f"unknown store plugin {plugin_name!r}; registry has "
                f"{sorted(store_registry)}"
            ) from None
        with self.lock:
            store = cls()
            store.config(**cfg)
            store.policy = StorePolicy(
                schema=schema,
                producers=frozenset(producers) if producers else None,
                metrics=tuple(metrics) if metrics else None,
            )
            self.stores.append(store)
            self._stores_version += 1
            return store

    def _matching_stores(self, mirror: MetricSet, producer_name: str) -> tuple:
        """Stores whose policy matches this mirror, cached on the mirror.

        Policy inputs (schema, producer) are frozen per (mirror,
        producer) pair, so the filter runs once per mirror lifetime
        rather than once per delivered record; the cache invalidates
        when a store is added (``_stores_version``)."""
        cached = getattr(mirror, "_store_match", None)
        if cached is not None and cached[0] == self._stores_version:
            return cached[1]
        matched = tuple(
            s for s in self.stores
            if s.policy.matches_keys(mirror.schema, producer_name)
        )
        mirror._store_match = (self._stores_version, matched)
        return matched

    def _deliver_to_stores(
        self, producer: Producer, mirror: MetricSet, trace=None
    ) -> None:
        if not self.stores:
            return
        if (self.batch_flush and self.set_pool is not None
                and mirror._ab is not None):
            self._deliver_staged(producer, mirror, trace)
            return
        record = StoreRecord.from_set(mirror, producer.cfg.name)
        self.records_delivered += 1
        now = self.env.now()
        if trace is not None:
            trace.t_store_submit = now
            trace.sample_ts = record.timestamp
        # End-to-end pipeline latency: sampler transaction close (the
        # timestamp carried in the data chunk) -> store hand-off here.
        self._h_sample_to_store.observe(max(now - record.timestamp, 0.0))
        matched = False
        if self.batch_flush:
            for store in self.stores:
                if store.wants(record):
                    matched = True
                    batch = self._flush_batches.get(store)
                    if batch is None:
                        batch = _FlushBatch(store, self.flush_batch_max)
                        self._flush_batches[store] = batch
                    batch.rows.append((record, now, trace))
                    if not batch.scheduled:
                        batch.scheduled = True
                        self.flush_pool.submit(
                            partial(self._flush_batched, batch),
                            cost=batch.seal, core=self.core, tag="store",
                        )
        else:
            cost = STORE_BASE_COST + STORE_PER_METRIC_COST * len(record.values)
            for store in self.stores:
                if store.wants(record):
                    matched = True
                    self.flush_pool.submit(
                        lambda s=store: self._flush_record(s, record, now, trace),
                        cost=cost, core=self.core, tag="store",
                    )
        if not matched:
            self._c_store_no_match.inc()

    def _deliver_staged(
        self, producer: Producer, mirror: MetricSet, trace=None
    ) -> None:
        """Columnar delivery: stage a raw arena-row snapshot per store.

        Accounting (delivery count, sample->store latency, no-match
        counter, trace stamps) matches the per-record path exactly;
        only :class:`StoreRecord` construction moves into the flush
        drain, where every staged row of one layout decodes as a single
        2-D numpy sweep.  The snapshot pins the delivered bytes, so a
        mirror re-installed before the drain cannot change what is
        stored.
        """
        if mirror._shadow is not None:
            sanitize.check_read(mirror)
        self.records_delivered += 1
        now = self.env.now()
        ts = mirror.timestamp
        if trace is not None:
            trace.t_store_submit = now
            trace.sample_ts = ts
        self._h_sample_to_store.observe(max(now - ts, 0.0))
        stores = self._matching_stores(mirror, producer.cfg.name)
        if not stores:
            self._c_store_no_match.inc()
            return
        staged = _StagedRow(bytes(mirror._data), ts, producer.cfg.name, mirror)
        for store in stores:
            batch = self._flush_batches.get(store)
            if batch is None:
                batch = _FlushBatch(store, self.flush_batch_max)
                self._flush_batches[store] = batch
            batch.rows.append((staged, now, trace))
            if not batch.scheduled:
                batch.scheduled = True
                self.flush_pool.submit(
                    partial(self._flush_batched, batch),
                    cost=batch.seal, core=self.core, tag="store",
                )

    def _flush_record(self, store: StorePlugin, record: StoreRecord,
                      t_submit: float, trace) -> None:
        """Flush-pool task: write one record, time it, survive failures."""
        try:
            store.submit(record)
        except StoreError:
            # submit() wraps any backend failure in StoreError after
            # counting it (records_failed); keep the flush worker alive
            # and surface it in telemetry.
            self._c_store_errors.inc()
            return
        end = self.env.now()
        self._h_store_flush.observe(end - t_submit)
        self.flight.record(end, "store", "flush", 1)
        if trace is not None:
            trace.t_store_done = end
            self._record_store_span(trace, t_submit, end)

    def _record_store_span(self, trace, t_submit: float, end: float) -> None:
        """Store-flush span of one traced transaction (exemplar path)."""
        sid = trace.span_id
        if sid is None or not self.spans.enabled:
            return
        self.spans.record(trace.trace_id, self.spans.alloc(), sid,
                          HOP_STORE, "store_flush", t_submit, end)

    def _flush_batched(self, batch: _FlushBatch) -> None:
        """Flush-pool task: drain one sealed batch through the store's
        vectorized write, then reschedule if rows accumulated while the
        worker was busy (a loaded flush thread runs back-to-back)."""
        rows = batch.sealed
        if rows is None:
            # RealEnv pools never evaluate the cost callable; seal here.
            batch.seal()
            rows = batch.sealed
        batch.sealed = None
        if rows and not self._shutdown:
            self._flush_rows(batch.store, rows)
        if batch.rows and not self._shutdown:
            self.flush_pool.submit(
                partial(self._flush_batched, batch),
                cost=batch.seal, core=self.core, tag="store",
            )
        else:
            batch.scheduled = False

    #: Staged groups below this size decode row-by-row: reshaping a
    #: couple of rows through numpy costs more than two struct unpacks.
    _VEC_MIN_ROWS = 4

    def _materialize_rows(self, rows: list[tuple]) -> list[StoreRecord]:
        """Turn a drained batch into records, vectorizing staged rows.

        Staged rows sharing one compiled layout are joined into a
        single (n_rows, data_size) uint8 matrix; one strided view +
        ``tolist()`` then decodes every value of every row — the
        store-side half of the §IV-D claim that per-record costs must
        not scale with fan-in.  The decoded Python values are exactly
        what per-row ``struct`` unpacking yields, so downstream
        formatting is byte-identical.
        """
        out: list = [None] * len(rows)
        groups: dict = {}
        for i, (row, _t, _tr) in enumerate(rows):
            if row.values is not None:  # already a materialized record
                out[i] = row
            else:
                groups.setdefault(row.mirror._compiled, []).append(i)
        for cs, idxs in groups.items():
            dtype = cs.array_dtype
            if dtype is not None and len(idxs) >= self._VEC_MIN_ROWS:
                import numpy as np

                first = rows[idxs[0]][0]
                width = first.card * np.dtype(dtype).itemsize
                mat = np.frombuffer(
                    b"".join(rows[i][0].data for i in idxs), dtype=np.uint8
                ).reshape(len(idxs), len(first.data))
                vals = (mat[:, cs.first_offset:cs.first_offset + width]
                        .view(dtype).tolist())
                self._c_arena_sweeps.inc()
                self._c_arena_rows.inc(len(idxs))
                for j, i in enumerate(idxs):
                    sr = rows[i][0]
                    m = sr.mirror
                    out[i] = StoreRecord(
                        timestamp=sr.ts, producer=sr.producer,
                        set_name=m.name, schema=m.schema, names=m._names,
                        component_ids=m._comp_ids, values=tuple(vals[j]),
                        mtypes=cs.mtypes,
                    )
            else:
                for i in idxs:
                    sr = rows[i][0]
                    m = sr.mirror
                    out[i] = StoreRecord(
                        timestamp=sr.ts, producer=sr.producer,
                        set_name=m.name, schema=m.schema, names=m._names,
                        component_ids=m._comp_ids,
                        values=m.snapshot_values(sr.data),
                        mtypes=cs.mtypes,
                    )
        return out

    def _flush_rows(self, store: StorePlugin, rows: list[tuple]) -> None:
        """Write one drained batch and account per-row flush latency."""
        n = len(rows)
        failed = store.submit_many(self._materialize_rows(rows))
        self._c_flush_rows_batched.inc(n)
        self._h_flush_batch_rows.observe(n)
        if failed:
            self._c_store_errors.inc(failed)
            return
        end = self.env.now()
        self.flight.record(end, "store", "flush", n)
        h = self._h_store_flush
        for _record, t_submit, trace in rows:
            h.observe(end - t_submit)
            if trace is not None:
                trace.t_store_done = end
                self._record_store_span(trace, t_submit, end)

    # ------------------------------------------------------------------
    # introspection / shutdown
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Operational counters, footprint numbers, and the telemetry
        registry snapshot.

        The returned structure is a deep, detached copy — every leaf is
        a plain int/float/str built under the daemon lock, so callers
        can hold, mutate, or serialize it without racing live counters
        (``vars(p.stats)`` would hand out the live ``__dict__``).
        """
        with self.lock:
            return {
                "name": self.name,
                "sets": len(self._sets),
                "arena_used": self.arena.used,
                "arena_peak": self.arena.peak_used,
                "arena_size": self.arena.size,
                "plugins": len(self._plugins),
                "producers": {
                    name: dataclasses.asdict(p.stats)
                    for name, p in self.producers.items()
                },
                "records_delivered": self.records_delivered,
                # Schema-stable for pollers: the arena keys are always
                # present — zeroed, not dropped, when the columnar plane
                # is off (REPRO_ARENA=0 or mid-run disablement).
                "set_pool": (self.set_pool.stats()
                             if self.set_pool is not None
                             else {"arenas": 0, "blocks": 0, "rows": 0}),
                "freshness": self.freshness.fleet(self.env.now()),
                # Schema-stable like set_pool: zeroed when the serving
                # tier is not enabled on this daemon.
                "query": (self.query_engine.stats()
                          if self.query_engine is not None
                          else {"requests": 0, "cache_hits": 0,
                                "cache_misses": 0, "rows_served": 0,
                                "lru_entries": 0, "hot_containers": 0}),
                # Schema-stable shard-plane counters: process-wide (the
                # conservative-window runner's accounting), zeros when
                # REPRO_SHARDS is off.
                "shard": shard_runtime_snapshot(),
                "stores": [
                    {
                        "plugin": s.plugin_name,
                        "records": s.records_stored,
                        "failed": s.records_failed,
                        "dropped": s.records_dropped,
                        "bytes_written": s.bytes_written(),
                    }
                    for s in self.stores
                ],
                "obs": self.obs.snapshot(),
            }

    def total_set_bytes(self) -> int:
        """Total metric-set memory (metadata + data) held by the daemon."""
        with self.lock:
            return sum(s.total_size for s in self._sets.values())

    def shutdown(self) -> None:
        if self._shutdown:
            return
        self._shutdown = True
        self.flight.record(self.env.now(), "daemon", "shutdown")
        with self.lock:
            for sched in list(self._schedules.values()):
                sched.handle.cancel()
            self._schedules.clear()
            for prod in list(self.producers.values()):
                prod.stop()
            self.producers.clear()
            for state in self._advertisements.values():
                state["stopped"] = True
            self._advertisements.clear()
            for lst in self._listeners:
                lst.close()
            # on_close handlers prune the served list; iterate a copy.
            for ep in list(self._served_endpoints):
                if not ep.closed:
                    ep.close()
            # Drain batched rows still waiting on a flush-pool wakeup
            # before the stores close, so shutdown never loses them.
            for batch in self._flush_batches.values():
                rows = (batch.sealed or []) + batch.rows
                batch.sealed = None
                batch.rows = []
                if rows:
                    self._flush_rows(batch.store, rows)
            for store in self.stores:
                store.close()
        if self._own_env:
            self.env.shutdown()

    def __enter__(self) -> "Ldmsd":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
