"""Sampler plugin framework.

A sampling plugin defines a collection of metrics called a metric set
and periodically overwrites the set's data chunk in place; no sample
history is retained on the node (paper §IV-A).  Plugins are registered
by name and loaded/configured/started dynamically by ldmsd.

Plugin lifecycle::

    plugin = sampler_registry["meminfo"](daemon)
    plugin.config(instance="node1/meminfo", component_id=1, ...)
    # daemon schedules:
    plugin.begin_sample()          # opens transactions (consistent := 0)
    plugin.finish_sample(now)      # do_sample() + close transactions

The begin/finish split exists so the simulator can model the sampling
busy window: a data fetch that lands inside the window sees the
consistent flag clear and is discarded by the consumer, exactly as a
torn RDMA read would be (§IV-A: "Collection of a metric set whose data
has not been updated or is incomplete does not result in a write").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.metric import MetricType
from repro.core.metric_set import MetricSet
from repro.util.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.ldmsd import Ldmsd

__all__ = ["SamplerPlugin", "sampler_registry", "register_sampler", "default_sample_cost"]

#: Calibration (DESIGN.md): fixed per-sample overhead plus per-metric
#: collection cost.  The per-metric figure is the paper's measured
#: 1.3 us/metric for LDMS; the base term makes a ~200-metric set cost
#: ~0.4 ms, matching the PSNAP-observed sampler execution time.
SAMPLE_BASE_COST = 150e-6
SAMPLE_PER_METRIC_COST = 1.3e-6


def default_sample_cost(total_metrics: int) -> float:
    """Simulated CPU seconds for one sampling event of a plugin."""
    return SAMPLE_BASE_COST + SAMPLE_PER_METRIC_COST * total_metrics


class SamplerPlugin:
    """Base class for sampler plugins.

    Subclasses set :attr:`plugin_name`, implement :meth:`config` (which
    must create metric sets via :meth:`create_set`) and
    :meth:`do_sample` (which writes current values with
    ``set.set_value``).
    """

    plugin_name: str = "abstract"

    def __init__(self, daemon: "Ldmsd"):
        self.daemon = daemon
        self.instance: str = ""
        self.component_id: int = 0
        self._sets: list[MetricSet] = []
        self.samples_taken = 0
        #: Set by the daemon around each scheduled sampling event:
        #: when the last sample finished and the cumulative busy time
        #: (seconds) spent sampling — the per-plugin view of the
        #: ``sample.duration`` telemetry histogram.
        self.last_sample_ts = 0.0
        self.sample_time_total = 0.0
        self._sample_t0 = 0.0
        self.configured = False

    # -- configuration -------------------------------------------------------
    def config(self, instance: str, component_id: int = 0, **kwargs) -> None:
        """Configure the plugin.  Subclasses should call ``super().config``
        first, then create their set(s)."""
        if self.configured:
            raise ConfigError(f"plugin {self.plugin_name!r} already configured")
        if not instance:
            raise ConfigError("sampler config requires instance=")
        self.instance = instance
        self.component_id = int(component_id)
        self.configured = True

    def create_set(
        self, name: str, schema: str, metrics: list[tuple[str, MetricType]]
    ) -> MetricSet:
        """Create (and publish) a metric set owned by this plugin."""
        mset = self.daemon.create_set(
            name, schema, [(m, t, self.component_id) for m, t in metrics]
        )
        self._sets.append(mset)
        return mset

    @property
    def sets(self) -> list[MetricSet]:
        return list(self._sets)

    @property
    def total_metrics(self) -> int:
        return sum(s.card for s in self._sets)

    @property
    def sample_cost(self) -> float:
        """Simulated cost of one sampling event (override to specialize)."""
        return default_sample_cost(self.total_metrics)

    # -- sampling --------------------------------------------------------------
    def begin_sample(self) -> None:
        for s in self._sets:
            s.begin_transaction()

    def finish_sample(self, now: float) -> None:
        try:
            self.do_sample(now)
            self.samples_taken += 1
        finally:
            for s in self._sets:
                s.end_transaction(now)

    def sample(self, now: float) -> None:
        """Single-shot convenience for direct (non-daemon) use."""
        self.begin_sample()
        self.finish_sample(now)

    def do_sample(self, now: float) -> None:
        raise NotImplementedError

    # -- columnar cohort protocol (REPRO_ARENA) --------------------------------
    def cohort_key(self):
        """Vectorization key for arena sampler cohorts, or None.

        A non-None hashable key declares that every plugin instance
        returning the same key produces, at the same tick count, the
        same value row — so a cohort sweep can compute the row once and
        broadcast it to every member's arena row.  Plugins whose values
        depend on per-instance state (RNG draws, per-node files) must
        return None and keep the scalar path.
        """
        return None

    def cohort_advance(self) -> int:
        """Advance per-tick state exactly as one ``do_sample`` would and
        return the new tick count (cohort-path replacement for the
        value computation inside ``do_sample``)."""
        raise NotImplementedError

    def cohort_row(self, ticks: int, dtype):
        """The value row (1-D array, descriptor order) at ``ticks``."""
        raise NotImplementedError

    def term(self) -> None:
        """Unload: delete the plugin's sets."""
        for s in self._sets:
            self.daemon.delete_set(s.name)
        self._sets.clear()


#: plugin name -> plugin class
sampler_registry: dict[str, type[SamplerPlugin]] = {}


def register_sampler(name: str) -> Callable[[type], type]:
    """Class decorator registering a sampler plugin under ``name``."""

    def deco(cls: type) -> type:
        if name in sampler_registry:
            raise ConfigError(f"sampler plugin {name!r} already registered")
        cls.plugin_name = name
        sampler_registry[name] = cls
        return cls

    return deco
