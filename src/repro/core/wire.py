"""LDMS wire protocol: framed request/reply messages.

The protocol has three operations an aggregator performs against a peer
(paper Fig. 2):

* **DIR** — list the metric sets the peer publishes.
* **LOOKUP** — fetch a set's metadata chunk once; the reply also carries
  a *region id* under which the peer has registered the set's data
  chunk for direct fetch.
* **UPDATE** — fetch the current data chunk.  Over RDMA transports this
  is a one-sided read of the registered region (no peer CPU); over the
  socket transport the peer's protocol handler services it.

Frames are length-prefixed little-endian:

    u32 frame_len | u8 msg_type | u64 request_id | payload

``frame_len`` counts everything after the length field itself.

**Trace context (version-negotiated).**  The high bit of ``msg_type``
(:data:`TRACE_FLAG`) marks a frame that carries a compact trace-context
blob between the header and the payload:

    u8 count | count × (u16 index | u64 trace_id | u32 parent_span | u8 hop)

``index`` names the region position a context applies to inside a
coalesced multi-read (0 for single-region frames); ``trace_id`` /
``parent_span`` / ``hop`` are the exemplar trace id, the sender's span
id, and the sender's hop number (:mod:`repro.obs.spans`).  Because the
flag bit was reserved (``msg_type`` ≤ 14), old decoders would reject
flagged frames — so senders only set it after the peer advertised the
``trace-ctx`` feature in its :data:`MsgType.HELLO` greeting, keeping
mixed-version fleets interoperable.  The query messages (13/14) are
gated the same way behind the ``query`` feature.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core.metric_set import SetInfo
from repro.util.errors import ReproError

__all__ = [
    "MsgType",
    "Frame",
    "encode_frame",
    "FrameDecoder",
    "pack_dir_req",
    "unpack_dir_reply",
    "pack_dir_reply",
    "pack_lookup_req",
    "unpack_lookup_req",
    "pack_lookup_reply",
    "unpack_lookup_reply",
    "pack_update_req",
    "unpack_update_req",
    "pack_update_reply",
    "unpack_update_reply",
    "pack_read_multi_req",
    "unpack_read_multi_req",
    "pack_read_multi_reply",
    "unpack_read_multi_reply",
    "pack_query_req",
    "unpack_query_req",
    "pack_query_reply",
    "unpack_query_reply",
    "QUERY_TRUNCATED",
    "QUERY_CACHE_HIT",
    "TRACE_FLAG",
    "pack_trace_ctx",
    "unpack_trace_ctx",
    "pack_hello",
    "unpack_hello",
]

_HDR_FMT = "<IBQ"
_HDR_STRUCT = struct.Struct(_HDR_FMT)
_HDR_SIZE = _HDR_STRUCT.size
_LEN_STRUCT = struct.Struct("<I")

E_OK = 0
E_NOENT = 2  # set not found
E_AGAIN = 11  # try later


class MsgType:
    DIR_REQ = 1
    DIR_REPLY = 2
    LOOKUP_REQ = 3
    LOOKUP_REPLY = 4
    UPDATE_REQ = 5
    UPDATE_REPLY = 6
    RDMA_READ_REQ = 7  # transport-internal: sock emulation of a read
    RDMA_READ_REPLY = 8
    ADVERTISE = 9  # passive mode: a sampler announces itself to an
    # aggregator it connected to (asymmetric network access, §IV-B)
    RDMA_READ_MULTI_REQ = 10  # coalesced read: N regions, one frame each way
    RDMA_READ_MULTI_REPLY = 11
    HELLO = 12  # transport-internal greeting: peer clock + feature list
    QUERY_REQ = 13  # serving tier: time-range query over the SOS store
    QUERY_REPLY = 14  # (feature-gated: peer must advertise "query")


#: High bit of ``msg_type``: the frame carries a trace-context blob.
TRACE_FLAG = 0x80
_MSG_TYPE_MASK = 0x7F

#: One trace-context entry: region index, trace id, parent span, hop.
_TRACE_ENTRY = struct.Struct("<HQIB")
_TRACE_ENTRY_SIZE = _TRACE_ENTRY.size


def pack_trace_ctx(entries: tuple) -> bytes:
    out = [struct.pack("<B", len(entries))]
    for idx, trace_id, parent_span, hop in entries:
        out.append(_TRACE_ENTRY.pack(idx, trace_id, parent_span, hop))
    return b"".join(out)


def unpack_trace_ctx(buf, pos: int = 0) -> tuple[tuple, int]:
    """Decode a trace blob at ``pos``; returns (entries, bytes consumed)."""
    (n,) = struct.unpack_from("<B", buf, pos)
    entries = tuple(
        _TRACE_ENTRY.unpack_from(buf, pos + 1 + i * _TRACE_ENTRY_SIZE)
        for i in range(n)
    )
    return entries, 1 + n * _TRACE_ENTRY_SIZE


@dataclass(frozen=True)
class Frame:
    msg_type: int
    request_id: int
    payload: bytes
    #: Decoded trace-context entries, or None for untraced frames.
    trace: tuple | None = field(default=None)


def encode_frame(msg_type: int, request_id: int, payload: bytes = b"",
                 trace: tuple | None = None) -> bytes:
    if trace is None:
        body = _HDR_STRUCT.pack(
            _HDR_SIZE - 4 + len(payload), msg_type, request_id)
        return body + payload
    blob = pack_trace_ctx(trace)
    body = _HDR_STRUCT.pack(
        _HDR_SIZE - 4 + len(blob) + len(payload),
        msg_type | TRACE_FLAG, request_id)
    return body + blob + payload


class FrameDecoder:
    """Incremental frame decoder for stream transports.

    Feed arbitrary byte chunks; complete frames pop out.  Decoding is
    cursor-based: complete frames advance a read offset into the buffer
    and compaction is amortized (the consumed prefix is only dropped
    once it is both large and the majority of the buffer), instead of
    recompacting the entire remainder once per frame.

    >>> dec = FrameDecoder()
    >>> frames = dec.feed(encode_frame(MsgType.DIR_REQ, 7))
    >>> frames[0].msg_type == MsgType.DIR_REQ
    True
    """

    #: Consumed-prefix size below which compaction is never worth it.
    _COMPACT_MIN = 4096

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pos = 0

    def feed(self, chunk: bytes) -> list[Frame]:
        buf = self._buf
        buf += chunk
        pos = self._pos
        end = len(buf)
        frames: list[Frame] = []
        mv = memoryview(buf)
        try:
            while end - pos >= 4:
                (flen,) = _LEN_STRUCT.unpack_from(buf, pos)
                if flen < _HDR_SIZE - 4:
                    raise ReproError(f"corrupt frame length {flen}")
                if end - pos < 4 + flen:
                    break
                _, mtype, rid = _HDR_STRUCT.unpack_from(buf, pos)
                if mtype & TRACE_FLAG:
                    trace, used = unpack_trace_ctx(buf, pos + _HDR_SIZE)
                    payload = bytes(mv[pos + _HDR_SIZE + used : pos + 4 + flen])
                    frames.append(Frame(mtype & _MSG_TYPE_MASK, rid,
                                        payload, trace))
                else:
                    payload = bytes(mv[pos + _HDR_SIZE : pos + 4 + flen])
                    frames.append(Frame(mtype, rid, payload))
                pos += 4 + flen
        finally:
            mv.release()
        if pos == end:
            buf.clear()
            pos = 0
        elif pos >= self._COMPACT_MIN and pos * 2 >= end:
            del buf[:pos]
            pos = 0
        self._pos = pos
        return frames


def decode_frame(raw: bytes) -> Frame:
    """Decode exactly one frame from a complete datagram.

    Decodes directly from the buffer — no intermediate decoder state.
    """
    if len(raw) < _HDR_SIZE:
        raise ReproError(f"expected exactly one frame, got a {len(raw)}-byte fragment")
    flen, mtype, rid = _HDR_STRUCT.unpack_from(raw, 0)
    if flen < _HDR_SIZE - 4:
        raise ReproError(f"corrupt frame length {flen}")
    if 4 + flen != len(raw):
        raise ReproError(
            f"expected exactly one {4 + flen}-byte frame, got {len(raw)} bytes"
        )
    if mtype & TRACE_FLAG:
        trace, used = unpack_trace_ctx(raw, _HDR_SIZE)
        return Frame(mtype & _MSG_TYPE_MASK, rid,
                     bytes(raw[_HDR_SIZE + used:]), trace)
    return Frame(mtype, rid, bytes(raw[_HDR_SIZE:]))


# ---------------------------------------------------------------------------
# DIR
# ---------------------------------------------------------------------------

_SETINFO_FMT = "<III128s64s"
_SETINFO_SIZE = struct.calcsize(_SETINFO_FMT)


def pack_dir_req() -> bytes:
    return b""


def pack_dir_reply(infos: list[SetInfo]) -> bytes:
    out = [struct.pack("<I", len(infos))]
    for i in infos:
        out.append(
            struct.pack(
                _SETINFO_FMT,
                i.card,
                i.meta_size,
                i.data_size,
                i.name.encode("utf-8"),
                i.schema.encode("utf-8"),
            )
        )
    return b"".join(out)


def unpack_dir_reply(payload: bytes) -> list[SetInfo]:
    (n,) = struct.unpack_from("<I", payload, 0)
    infos = []
    pos = 4
    for _ in range(n):
        card, msz, dsz, name_b, schema_b = struct.unpack_from(_SETINFO_FMT, payload, pos)
        pos += _SETINFO_SIZE
        infos.append(
            SetInfo(
                name=name_b.rstrip(b"\x00").decode(),
                schema=schema_b.rstrip(b"\x00").decode(),
                card=card,
                meta_size=msz,
                data_size=dsz,
            )
        )
    return infos


# ---------------------------------------------------------------------------
# LOOKUP
# ---------------------------------------------------------------------------


def pack_lookup_req(set_name: str) -> bytes:
    b = set_name.encode("utf-8")
    return struct.pack("<H", len(b)) + b


def unpack_lookup_req(payload: bytes) -> str:
    (n,) = struct.unpack_from("<H", payload, 0)
    return payload[2 : 2 + n].decode("utf-8")


def pack_lookup_reply(status: int, region_id: int = 0, meta: bytes = b"") -> bytes:
    return struct.pack("<iQI", status, region_id, len(meta)) + meta


def unpack_lookup_reply(payload: bytes) -> tuple[int, int, bytes]:
    status, region_id, mlen = struct.unpack_from("<iQI", payload, 0)
    return status, region_id, payload[16 : 16 + mlen]


# ---------------------------------------------------------------------------
# UPDATE (socket-transport path; RDMA transports bypass this and read the
# registered region directly)
# ---------------------------------------------------------------------------


def pack_advertise(name: str) -> bytes:
    b = name.encode("utf-8")
    return struct.pack("<H", len(b)) + b


def unpack_advertise(payload: bytes) -> str:
    (n,) = struct.unpack_from("<H", payload, 0)
    return payload[2 : 2 + n].decode("utf-8")


def pack_update_req(region_id: int) -> bytes:
    return struct.pack("<Q", region_id)


def unpack_update_req(payload: bytes) -> int:
    return struct.unpack_from("<Q", payload, 0)[0]


def pack_update_reply(status: int, data: bytes = b"") -> bytes:
    return struct.pack("<iI", status, len(data)) + data


def unpack_update_reply(payload: bytes) -> tuple[int, bytes]:
    status, dlen = struct.unpack_from("<iI", payload, 0)
    return status, payload[8 : 8 + dlen]


# ---------------------------------------------------------------------------
# Coalesced READ (update batching, §IV-A/§IV-D): one request frame names N
# registered regions; one reply frame carries N per-region results.  The
# framing/dispatch overhead of an update transaction is thereby paid once
# per producer per collection interval instead of once per metric set.
# ---------------------------------------------------------------------------


def pack_read_multi_req(region_ids: list[int]) -> bytes:
    return struct.pack(f"<I{len(region_ids)}Q", len(region_ids), *region_ids)


def unpack_read_multi_req(payload: bytes) -> list[int]:
    (n,) = struct.unpack_from("<I", payload, 0)
    return list(struct.unpack_from(f"<{n}Q", payload, 4))


def pack_read_multi_reply(parts: list[bytes | None]) -> bytes:
    out = [struct.pack("<I", len(parts))]
    for data in parts:
        if data is None:
            out.append(struct.pack("<iI", E_NOENT, 0))
        else:
            out.append(struct.pack("<iI", E_OK, len(data)))
            out.append(data)
    return b"".join(out)


def unpack_read_multi_reply(payload: bytes) -> list[bytes | None]:
    (n,) = struct.unpack_from("<I", payload, 0)
    pos = 4
    parts: list[bytes | None] = []
    for _ in range(n):
        status, dlen = struct.unpack_from("<iI", payload, pos)
        pos += 8
        parts.append(bytes(payload[pos : pos + dlen]) if status == E_OK else None)
        pos += dlen
    return parts


# ---------------------------------------------------------------------------
# QUERY (serving tier, PR 9): a client asks an aggregator for a time
# range of stored records — base data (level=0) or a pre-computed
# rollup (level=N seconds).  Feature-gated like TRACE_FLAG: MsgType 13
# and 14 did not exist before this build, so clients only send
# QUERY_REQ after the peer's HELLO advertised the "query" feature.
#
# Request:  f64 t0 | f64 t1 | u32 level | u32 comp_id | u32 max_records
#           | u16 schema_len | schema — comp_id 0 means all components;
#           max_records 0 means unbounded.
# Reply:    i32 status | u8 flags | u32 ncols | ncols x (u16 len | name)
#           | u32 nrows | nrows x (f64 ts | u32 comp_id | ncols x f64)
# ---------------------------------------------------------------------------

#: Reply flag bits: the row set was cut at ``max_records``; the reply
#: was served from the hot-window / LRU cache.
QUERY_TRUNCATED = 0x01
QUERY_CACHE_HIT = 0x02


def pack_query_req(schema: str, t0: float, t1: float, level: int = 0,
                   comp_id: int = 0, max_records: int = 0) -> bytes:
    b = schema.encode("utf-8")
    return struct.pack("<ddIIIH", t0, t1, level, comp_id, max_records, len(b)) + b


def unpack_query_req(payload: bytes) -> tuple[str, float, float, int, int, int]:
    t0, t1, level, comp_id, max_records, n = struct.unpack_from("<ddIIIH", payload, 0)
    schema = payload[30 : 30 + n].decode("utf-8")
    return schema, t0, t1, level, comp_id, max_records


def pack_query_reply(status: int, names: tuple[str, ...] = (),
                     rows: list | tuple = (), flags: int = 0) -> bytes:
    out = [struct.pack("<iBI", status, flags, len(names))]
    for name in names:
        b = name.encode("utf-8")
        out.append(struct.pack("<H", len(b)))
        out.append(b)
    out.append(struct.pack("<I", len(rows)))
    for ts, comp_id, values in rows:
        out.append(struct.pack("<dI", ts, comp_id))
        out.append(struct.pack(f"<{len(names)}d", *values))
    return b"".join(out)


def unpack_query_reply(payload: bytes) -> tuple[int, int, tuple[str, ...], list]:
    status, flags, ncols = struct.unpack_from("<iBI", payload, 0)
    pos = 9
    names = []
    for _ in range(ncols):
        (n,) = struct.unpack_from("<H", payload, pos)
        pos += 2
        names.append(payload[pos : pos + n].decode("utf-8"))
        pos += n
    (nrows,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    rows = []
    for _ in range(nrows):
        ts, comp_id = struct.unpack_from("<dI", payload, pos)
        pos += 12
        values = struct.unpack_from(f"<{ncols}d", payload, pos)
        pos += 8 * ncols
        rows.append((ts, comp_id, values))
    return status, flags, tuple(names), rows


# ---------------------------------------------------------------------------
# HELLO (transport-internal, stream transports): sent once per direction
# right after connect.  Carries the sender's daemon clock (so a peer can
# convert transaction timestamps into ages without sharing an epoch —
# daemon clocks are monotonic-since-start, not wall time) and its
# feature list for version negotiation (currently just "trace-ctx").
# Peers that never send a HELLO are treated as featureless old builds.
# ---------------------------------------------------------------------------


def pack_hello(now: float, features: frozenset[str] | set[str]) -> bytes:
    b = ",".join(sorted(features)).encode("utf-8")
    return struct.pack("<dH", now, len(b)) + b


def unpack_hello(payload: bytes) -> tuple[float, frozenset[str]]:
    now, n = struct.unpack_from("<dH", payload, 0)
    raw = payload[10 : 10 + n].decode("utf-8")
    return now, (frozenset(raw.split(",")) if raw else frozenset())
