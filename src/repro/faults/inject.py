"""Applying a :class:`~repro.faults.plan.FaultPlan` to a live topology.

The injector schedules every event of an armed plan on the environment
clock and applies it at its simulation instant:

* ``crash``/``restart`` — hard-stop a daemon (``shutdown()``; peers
  observe the close after the transport's propagation delay, like a
  TCP reset) and optionally rebuild it through a caller-supplied
  ``restart`` factory;
* link faults — drive :class:`repro.transport.simfabric.FabricFaults`
  (block/unblock, extra latency, partitions);
* ``drop_frames`` — a self-retiring fabric filter that eats the next
  ``count`` frames on a directed link, optionally only frames of one
  message type (the lost-LOOKUP_REPLY fault);
* ``store_fail``/``store_heal`` — flip ``fail_writes`` on every store
  plugin of a daemon.

Every applied event is appended to :attr:`FaultInjector.log` as
``(time, description)`` and counted on the targeted daemon's telemetry
registry as ``faults.injected`` (exported by ``ldmsd_self``), so a
seeded plan yields an identical, inspectable injection log on every
run.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core import wire
from repro.core.env import Env
from repro.faults.plan import FaultEvent, FaultPlan
from repro.obs import flight as flightmod
from repro.util.errors import ConfigError

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms fault plans against a registry of daemons and a fabric.

    Parameters
    ----------
    env:
        Clock the events are scheduled on.
    daemons:
        Mutable mapping of daemon name -> ``Ldmsd``.  The injector
        crashes daemons through it and writes restarted instances back,
        so callers sharing the mapping see replacements.
    fabric:
        The :class:`~repro.transport.simfabric.SimFabric` whose fault
        state link events drive.  Optional when the plan has no link or
        frame-drop events.
    restart:
        ``restart(name) -> Ldmsd`` factory used by ``restart`` events.
        Optional when the plan never restarts anything.
    """

    def __init__(
        self,
        env: Env,
        daemons: Optional[dict] = None,
        fabric=None,
        restart: Optional[Callable[[str], object]] = None,
    ):
        self.env = env
        self.daemons = daemons if daemons is not None else {}
        self.fabric = fabric
        self.restart = restart
        #: (sim time, event description) per applied event.
        self.log: list[tuple[float, str]] = []
        self.injected = 0
        self._handles: list = []

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    _LINK_KINDS = frozenset(
        {"link_down", "link_up", "slow_link", "link_normal",
         "partition", "heal", "drop_frames"}
    )

    def arm(self, plan: FaultPlan) -> None:
        """Schedule every event of ``plan`` relative to the current
        clock.  Validation is up-front: a plan that needs a fabric or a
        restart factory the injector does not have is rejected before
        anything is scheduled."""
        for ev in plan.events:
            if ev.kind in self._LINK_KINDS and self.fabric is None:
                raise ConfigError(f"{ev.describe()} needs a fabric")
            if ev.kind == "restart" and self.restart is None:
                raise ConfigError(f"{ev.describe()} needs a restart factory")
        now = self.env.now()
        for ev in plan.events:
            self._handles.append(
                self.env.call_later(max(ev.at - now, 0.0),
                                    lambda e=ev: self._apply(e))
            )

    def disarm(self) -> None:
        """Cancel every not-yet-applied event."""
        for h in self._handles:
            h.cancel()
        self._handles.clear()

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def _count_on(self, name: str) -> None:
        d = self.daemons.get(name)
        if d is not None:
            d.obs.counter("faults.injected").inc()

    def _apply(self, ev: FaultEvent) -> None:
        self.injected += 1
        self.log.append((self.env.now(), ev.describe()))
        faults = self.fabric.faults if self.fabric is not None else None
        if ev.kind == "crash":
            name = ev.target[0]
            self._count_on(name)
            d = self.daemons.get(name)
            if d is not None:
                # The victim's flight ring gets the crash as its final
                # event, then the ring is frozen into a postmortem dump
                # *before* shutdown tears anything down.
                now = self.env.now()
                d.flight.record(now, "fault", "crash")
                flightmod.postmortem(f"fault_crash:{name}", now, (d,))
                d.shutdown()
        elif ev.kind == "restart":
            name = ev.target[0]
            self.daemons[name] = self.restart(name)
            self._count_on(name)
        elif ev.kind == "link_down":
            faults.block(*ev.target)
        elif ev.kind == "link_up":
            faults.unblock(*ev.target)
        elif ev.kind == "slow_link":
            faults.set_latency(*ev.target, ev.extra_latency)
        elif ev.kind == "link_normal":
            faults.clear_latency(*ev.target)
        elif ev.kind == "partition":
            group_a, group_b = ev.target
            for a in group_a:
                for b in group_b:
                    faults.block(a, b)
        elif ev.kind == "heal":
            group_a, group_b = ev.target
            for a in group_a:
                for b in group_b:
                    faults.unblock(a, b)
        elif ev.kind == "drop_frames":
            faults.add_filter(self._make_drop_filter(ev, faults))
        elif ev.kind == "store_fail":
            name = ev.target[0]
            self._count_on(name)
            d = self.daemons.get(name)
            if d is not None:
                for store in d.stores:
                    store.fail_writes = True
        elif ev.kind == "store_heal":
            d = self.daemons.get(ev.target[0])
            if d is not None:
                for store in d.stores:
                    store.fail_writes = False

    @staticmethod
    def _make_drop_filter(ev: FaultEvent, faults):
        """Filter eating the next ``ev.count`` matching frames on the
        directed link ``ev.target``; retires itself when spent."""
        want_src, want_dst = ev.target
        state = {"left": ev.count}

        def fn(src, dst, frame: bytes) -> bool:
            if (src, dst) != (want_src, want_dst):
                return False
            if (
                ev.msg_type is not None
                and wire.decode_frame(frame).msg_type != ev.msg_type
            ):
                return False
            state["left"] -= 1
            if state["left"] <= 0:
                # This frame is the last one to eat: drop it, then get
                # out of the fast path.
                faults.remove_filter(fn)
            return True

        return fn
