"""Deterministic fault injection and failover (paper §IV-B).

The paper's resilience story has three legs: standby connections held
by a neighbouring aggregator, failover "driven by an external
watchdog", and bypass of non-reporting hosts.  This package supplies
the two pieces the daemon itself does not implement:

* :class:`FaultPlan` / :class:`FaultInjector` — a declarative,
  seed-reproducible schedule of daemon crashes/restarts, link drops and
  partitions, link slowdowns, frame drops, and store write failures,
  applied entirely on the DES clock (no wall-clock; passes the
  ``des-purity`` lint like the rest of the simulated world).
* :class:`Watchdog` — the external watchdog of §IV-B: it monitors
  producer progress (``last_update_ts``), declares a target dead after
  ``k`` missed check intervals, promotes the matching standby
  producers via ``activate_standby``, and demotes them when the
  primary recovers.

Faults are exercised deterministically (Jepsen-style schedules): the
same seed yields the same injection log, so failover behaviour is a
regression-testable property, not an anecdote.
"""

from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.inject import FaultInjector
from repro.faults.watchdog import Watchdog

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector", "Watchdog"]
