"""Declarative fault schedules.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records,
each naming a kind, a simulation time, a target, and (for transient
faults) a duration.  Plans are pure data: building one performs no
injection, so the same plan can be armed against several topologies or
replayed across runs.  :meth:`FaultPlan.random` draws a seeded plan
from a topology description — the fixed-seed smoke schedule CI runs
under the sanitizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.util.errors import ConfigError
from repro.util.rngtools import spawn_rng

__all__ = ["FaultEvent", "FaultPlan", "KINDS"]

#: Every event kind an injector understands.
KINDS = (
    "crash",        # target: (daemon,)            — hard-stop the daemon
    "restart",      # target: (daemon,)            — bring it back (needs restart fn)
    "link_down",    # target: (node_a, node_b)     — drop all traffic both ways
    "link_up",      # target: (node_a, node_b)
    "slow_link",    # target: (node_a, node_b)     — add extra_latency per message
    "link_normal",  # target: (node_a, node_b)
    "partition",    # target: (group_a, group_b)   — block every cross pair
    "heal",         # target: (group_a, group_b)
    "drop_frames",  # target: (src, dst)           — drop next `count` matching frames
    "store_fail",   # target: (daemon,)            — store backends raise on write
    "store_heal",   # target: (daemon,)
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.  ``target`` semantics depend on ``kind``."""

    at: float
    kind: str
    target: tuple = ()
    extra_latency: float = 0.0
    msg_type: Optional[int] = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}; know {KINDS}")
        if self.at < 0:
            raise ConfigError(f"fault time {self.at} is negative")

    def describe(self) -> str:
        tgt = "/".join(str(t) for t in self.target)
        return f"{self.kind}({tgt})"


@dataclass
class FaultPlan:
    """A deterministic schedule of faults.

    Builder methods append events; transient faults (``duration`` set)
    append the matching recovery event automatically.  ``events`` stays
    sorted by time with insertion order breaking ties, mirroring the
    engine's FIFO-at-equal-times rule.
    """

    events: list[FaultEvent] = field(default_factory=list)

    def _add(self, ev: FaultEvent) -> "FaultPlan":
        self.events.append(ev)
        self.events.sort(key=lambda e: e.at)
        return self

    # -- daemon faults -----------------------------------------------------
    def crash(self, daemon: str, at: float,
              restart_after: Optional[float] = None) -> "FaultPlan":
        """Hard-stop ``daemon`` at ``at``; optionally restart it later
        (the injector must then be given a ``restart`` factory)."""
        self._add(FaultEvent(at=at, kind="crash", target=(daemon,)))
        if restart_after is not None:
            self._add(FaultEvent(at=at + restart_after, kind="restart",
                                 target=(daemon,)))
        return self

    def store_failure(self, daemon: str, at: float,
                      duration: Optional[float] = None) -> "FaultPlan":
        """Make every store backend on ``daemon`` fail writes."""
        self._add(FaultEvent(at=at, kind="store_fail", target=(daemon,)))
        if duration is not None:
            self._add(FaultEvent(at=at + duration, kind="store_heal",
                                 target=(daemon,)))
        return self

    # -- link faults -------------------------------------------------------
    def link_down(self, a, b, at: float,
                  duration: Optional[float] = None) -> "FaultPlan":
        """Black-hole all traffic between fabric nodes ``a`` and ``b``."""
        self._add(FaultEvent(at=at, kind="link_down", target=(a, b)))
        if duration is not None:
            self._add(FaultEvent(at=at + duration, kind="link_up", target=(a, b)))
        return self

    def slow_link(self, a, b, at: float, extra_latency: float,
                  duration: Optional[float] = None) -> "FaultPlan":
        """Add ``extra_latency`` seconds to every message on the link."""
        self._add(FaultEvent(at=at, kind="slow_link", target=(a, b),
                             extra_latency=extra_latency))
        if duration is not None:
            self._add(FaultEvent(at=at + duration, kind="link_normal",
                                 target=(a, b)))
        return self

    def partition(self, group_a: Sequence, group_b: Sequence, at: float,
                  duration: Optional[float] = None) -> "FaultPlan":
        """Split the fabric into two halves that cannot talk."""
        self._add(FaultEvent(at=at, kind="partition",
                             target=(tuple(group_a), tuple(group_b))))
        if duration is not None:
            self._add(FaultEvent(at=at + duration, kind="heal",
                                 target=(tuple(group_a), tuple(group_b))))
        return self

    def drop_frames(self, src, dst, at: float, msg_type: Optional[int] = None,
                    count: int = 1) -> "FaultPlan":
        """Drop the next ``count`` frames from ``src`` to ``dst``
        (optionally only frames of ``msg_type``) — the lost-reply fault
        that exposed the LOOKUP_PENDING wedge."""
        return self._add(FaultEvent(at=at, kind="drop_frames", target=(src, dst),
                                    msg_type=msg_type, count=count))

    # -- generated plans ---------------------------------------------------
    @classmethod
    def random(cls, seed: int, *, daemons: Sequence[str] = (),
               links: Sequence[tuple] = (), stores: Sequence[str] = (),
               t0: float = 0.0, t1: float = 60.0, n_events: int = 6,
               mean_duration: float = 5.0) -> "FaultPlan":
        """Draw a seeded random plan against a topology description.

        ``daemons`` are crash candidates (crashes are permanent — pass
        ``daemons=()`` for a plan that fully heals), ``links`` are
        fabric node-id pairs, ``stores`` are daemons whose store
        backends may fail; link and store faults always heal.  Same
        seed, same plan.
        """
        rng = spawn_rng(seed, "fault-plan")
        kinds: list[str] = []
        if links:
            kinds += ["link_down", "slow_link"]
        if stores:
            kinds += ["store_fail"]
        if daemons:
            kinds += ["crash"]
        if not kinds:
            raise ConfigError("random plan needs daemons, links, or stores")
        plan = cls()
        for _ in range(n_events):
            kind = kinds[int(rng.integers(len(kinds)))]
            at = float(rng.uniform(t0, t1))
            dur = float(rng.exponential(mean_duration)) + 0.5
            if kind == "crash":
                name = daemons[int(rng.integers(len(daemons)))]
                plan.crash(name, at)
            elif kind == "link_down":
                a, b = links[int(rng.integers(len(links)))]
                plan.link_down(a, b, at, duration=dur)
            elif kind == "slow_link":
                a, b = links[int(rng.integers(len(links)))]
                plan.slow_link(a, b, at, float(rng.uniform(1e-4, 5e-3)),
                               duration=dur)
            else:
                name = stores[int(rng.integers(len(stores)))]
                plan.store_failure(name, at, duration=dur)
        return plan
