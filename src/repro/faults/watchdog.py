"""The external failover watchdog of paper §IV-B.

The paper's aggregators hold *standby* connections to another
aggregator's collection targets but deliberately do not decide failover
themselves: "failover is driven by an external watchdog".  This module
is that watchdog.  It polls a heartbeat per watched target — for an
aggregator, the most recent ``last_update_ts`` across its producers —
on a fixed check interval, declares the target dead after ``k``
consecutive checks without progress, and fires the registered failover
action (promoting standby producers via ``activate_standby``).  If the
heartbeat later advances again, the target is declared recovered and
the standbys are demoted.

Detection latency is bounded: a target that stops making progress is
declared dead within ``(k + 1) * check_interval`` of its last
heartbeat (one interval to notice no progress, ``k`` to confirm), so
with ``check_interval`` equal to the collection interval the paper's
fast-failover configuration promotes within ``k`` intervals plus one.

The watchdog runs entirely on the injected environment clock, so it is
deterministic under the DES and wall-clock-driven under ``RealEnv``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.env import Env
from repro.obs import flight as flightmod
from repro.util.errors import ConfigError

__all__ = ["Watchdog", "WatchedTarget"]


@dataclass
class WatchedTarget:
    """Liveness state of one watched name."""

    name: str
    #: Zero-argument callable returning a monotonically non-decreasing
    #: progress stamp (e.g. the newest producer ``last_update_ts``).
    heartbeat: Callable[[], float]
    on_dead: Callable[[], None]
    on_recover: Optional[Callable[[], None]] = None
    #: Last observed stamp; ``None`` until the baseline check has run,
    #: so a freshly watched target is never declared dead for history
    #: that predates the watchdog.
    last: Optional[float] = None
    missed: int = 0
    dead: bool = False
    deaths: int = 0
    recoveries: int = 0
    #: Flight recorder that logs this target's checks/transitions
    #: (normally the standby owner's), or None.
    flight: Optional[object] = None
    #: Daemons whose flight rings a death freezes into a postmortem
    #: dump; empty disables the dump.
    postmortem_daemons: tuple = ()


@dataclass
class WatchdogEvent:
    """One state transition, recorded for post-run inspection."""

    time: float
    target: str
    kind: str  # "dead" | "recovered"
    missed: int = 0

    def describe(self) -> str:
        return f"t={self.time:.3f} {self.target} {self.kind}"


class Watchdog:
    """Poll heartbeats; declare death after ``k`` stalled checks.

    Parameters
    ----------
    env:
        Clock/scheduler the checks run on.
    check_interval:
        Seconds between liveness checks.  Must be no shorter than the
        heartbeat's natural period, otherwise healthy targets look
        stalled between legitimate updates.
    k:
        Consecutive stalled checks before a target is declared dead
        (the paper's "missed intervals" threshold).
    """

    def __init__(self, env: Env, check_interval: float, k: int = 3):
        if check_interval <= 0:
            raise ConfigError("watchdog check_interval must be positive")
        if k < 1:
            raise ConfigError("watchdog k must be >= 1")
        self.env = env
        self.check_interval = float(check_interval)
        self.k = int(k)
        self.targets: dict[str, WatchedTarget] = {}
        self.events: list[WatchdogEvent] = []
        self.checks_run = 0
        self._handle = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def watch(
        self,
        name: str,
        heartbeat: Callable[[], float],
        on_dead: Callable[[], None],
        on_recover: Optional[Callable[[], None]] = None,
        flight=None,
        postmortem_daemons: tuple = (),
    ) -> WatchedTarget:
        """Watch an arbitrary heartbeat; fire ``on_dead`` on stall."""
        if name in self.targets:
            raise ConfigError(f"already watching {name!r}")
        tgt = WatchedTarget(name=name, heartbeat=heartbeat,
                            on_dead=on_dead, on_recover=on_recover,
                            flight=flight,
                            postmortem_daemons=tuple(postmortem_daemons))
        self.targets[name] = tgt
        return tgt

    def unwatch(self, name: str) -> None:
        self.targets.pop(name, None)

    def watch_aggregator(
        self,
        primary,
        standby_owner,
        standby_producers: Optional[Sequence[str]] = None,
    ) -> WatchedTarget:
        """Wire the §IV-B loop: watch ``primary``'s collection progress
        and fail over to ``standby_owner``'s standby producers.

        ``primary`` and ``standby_owner`` are :class:`~repro.core.ldmsd.Ldmsd`
        instances.  The heartbeat is the newest ``last_update_ts`` across
        the primary's producers — an aggregator that crashed (or lost its
        whole fan-in) stops advancing it.  On death every named standby
        producer on the owner is promoted with ``activate_standby``; on
        recovery they are demoted so the primary's data is not stored
        twice.  Promotions surface in the owner's telemetry as
        ``watchdog.promotions`` (exported by ``ldmsd_self``).
        """
        if standby_producers is None:
            standby_producers = tuple(
                n for n, p in standby_owner.producers.items() if p.cfg.standby
            )
        names = tuple(standby_producers)
        if not names:
            raise ConfigError(
                f"{standby_owner.name!r} holds no standby producers for "
                f"{primary.name!r}"
            )
        promotions = standby_owner.obs.counter("watchdog.promotions")
        demotions = standby_owner.obs.counter("watchdog.demotions")

        def heartbeat() -> float:
            return max(
                (p.stats.last_update_ts for p in primary.producers.values()),
                default=0.0,
            )

        def on_dead() -> None:
            for n in names:
                if n in standby_owner.producers:
                    standby_owner.activate_standby(n)
                    promotions.inc()

        def on_recover() -> None:
            for n in names:
                prod = standby_owner.producers.get(n)
                if prod is not None:
                    prod.deactivate()
                    demotions.inc()

        return self.watch(primary.name, heartbeat, on_dead, on_recover,
                          flight=standby_owner.flight,
                          postmortem_daemons=(primary, standby_owner))

    # ------------------------------------------------------------------
    # the check loop
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._handle is not None

    def start(self) -> None:
        if self._handle is not None:
            return
        self._handle = self.env.call_every(self.check_interval, self._check)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _check(self) -> None:
        self.checks_run += 1
        now = self.env.now()
        for tgt in self.targets.values():
            hb = tgt.heartbeat()
            fl = tgt.flight
            if fl is not None:
                fl.record(now, "watchdog", "check", tgt.missed,
                          1 if tgt.dead else 0)
            if tgt.last is None:
                # Baseline: the first check only records where the
                # heartbeat stands; stalls are counted from here.
                tgt.last = hb
                continue
            if hb > tgt.last:
                tgt.last = hb
                tgt.missed = 0
                if tgt.dead:
                    tgt.dead = False
                    tgt.recoveries += 1
                    self.events.append(
                        WatchdogEvent(time=now, target=tgt.name, kind="recovered")
                    )
                    if fl is not None:
                        fl.record(now, "watchdog", "recovered")
                    if tgt.on_recover is not None:
                        tgt.on_recover()
                continue
            tgt.missed += 1
            if not tgt.dead and tgt.missed >= self.k:
                tgt.dead = True
                tgt.deaths += 1
                self.events.append(
                    WatchdogEvent(time=now, target=tgt.name, kind="dead",
                                  missed=tgt.missed)
                )
                if fl is not None:
                    fl.record(now, "watchdog", "promote", tgt.missed)
                tgt.on_dead()
                if tgt.postmortem_daemons:
                    # Freeze the involved daemons' last moments — the
                    # dump's whole point is that the dead primary's ring
                    # still holds what it was doing before the stall.
                    flightmod.postmortem(
                        f"watchdog_promotion:{tgt.name}", now,
                        tgt.postmortem_daemons)
