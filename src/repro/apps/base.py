"""Monitoring specs, noise models, and the BSP application skeleton."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.sampler import default_sample_cost

__all__ = ["MonitoringSpec", "NoiseModel", "RunResult", "BspApp"]


@dataclass(frozen=True)
class MonitoringSpec:
    """An LDMS monitoring configuration as an application sees it.

    Attributes
    ----------
    interval:
        Sampling period in seconds; ``None`` = unmonitored.
    sample_cost:
        CPU seconds one sampling event occupies on the node.  The paper
        measures "the known sampling execution time of order 400 us"
        for the Blue Waters set (§V-A1); the Chama 7-plugin set costs
        about the same in aggregate via
        :func:`~repro.core.sampler.default_sample_cost`.
    synchronized:
        Wall-aligned sampling across nodes (§IV-B); bounds the number of
        perturbed iterations for coupled applications.
    aggregation:
        False models the paper's "no net" variants: sampling runs but
        no data is pulled off the node (Fig. 6 legend "60s, no net").
    net_bytes_per_interval:
        Data-chunk bytes pulled per node per collection interval (Chama:
        4 kB over 7 sets, §IV-D).
    metric_fraction:
        Fraction of the full sampler list that is active (Fig. 8's
        HM_HALF runs "samplers contributing about half the metrics").
        When a per-plugin cost list is given, the cheapest plugins are
        kept (heavy per-cpu collectors are the natural ones to drop).
    plugin_costs:
        Optional per-plugin sampling costs.  Chama runs 7 independent
        sampler plugins per node (§IV-G), each firing asynchronously
        with its own cost; empty means "one combined sampling event of
        ``sample_cost``" (the Blue Waters single-set configuration).
    """

    interval: float | None
    sample_cost: float = 400e-6
    synchronized: bool = False
    aggregation: bool = True
    net_bytes_per_interval: float = 4096.0
    metric_fraction: float = 1.0
    plugin_costs: tuple[float, ...] = ()

    # ------------------------------------------------------------------
    @classmethod
    def unmonitored(cls) -> "MonitoringSpec":
        return cls(interval=None)

    @classmethod
    def interval_1s(cls, **kw) -> "MonitoringSpec":
        return cls(interval=1.0, **kw)

    @classmethod
    def interval_20s(cls, **kw) -> "MonitoringSpec":
        return cls(interval=20.0, **kw)

    @classmethod
    def interval_60s(cls, **kw) -> "MonitoringSpec":
        return cls(interval=60.0, **kw)

    @classmethod
    def half_metrics(cls, interval: float = 1.0,
                     plugin_costs: tuple[float, ...] = ()) -> "MonitoringSpec":
        return cls(interval=interval, metric_fraction=0.5,
                   plugin_costs=plugin_costs)

    @classmethod
    def chama_plugins(cls, interval: float = 1.0,
                      metric_fraction: float = 1.0) -> "MonitoringSpec":
        """The 7-plugin Chama sampler mix (§IV-G): one heavy per-cpu
        collector plus six light ones."""
        return cls(interval=interval, metric_fraction=metric_fraction,
                   plugin_costs=(400e-6, 60e-6, 50e-6, 45e-6, 40e-6,
                                 35e-6, 30e-6))

    def without_network(self) -> "MonitoringSpec":
        return replace(self, aggregation=False)

    @property
    def monitored(self) -> bool:
        return self.interval is not None

    @property
    def active_plugin_costs(self) -> tuple[float, ...]:
        """Per-plugin costs of the active samplers.

        With explicit ``plugin_costs``, ``metric_fraction`` keeps the
        cheapest ``ceil(frac * n)`` plugins.  Otherwise a single
        combined event whose cost scales with the metric fraction
        (fixed + per-metric components).
        """
        if not self.monitored:
            return ()
        if self.plugin_costs:
            n_keep = max(int(np.ceil(self.metric_fraction * len(self.plugin_costs))), 0)
            return tuple(sorted(self.plugin_costs))[:n_keep]
        base = default_sample_cost(0)
        return (base + (self.sample_cost - base) * self.metric_fraction,)

    @property
    def effective_cost(self) -> float:
        """Total sampler CPU per node per interval (all active plugins)."""
        return float(sum(self.active_plugin_costs))

    def label(self) -> str:
        if not self.monitored:
            return "unmonitored"
        tag = f"{self.interval:g}s"
        if self.metric_fraction < 1.0:
            tag += f" ({self.metric_fraction:.0%} metrics)"
        if not self.aggregation:
            tag += ", no net"
        return tag


class NoiseModel:
    """Vectorised sampler-fire bookkeeping for one run.

    Generates per-node sampler fire times over a run window and answers
    "how much sampler time lands on node n during [t, t+dt)?" in bulk.
    Asynchronous sampling gives every node an independent phase;
    synchronized sampling fires all nodes at common wall times.
    """

    def __init__(self, spec: MonitoringSpec, n_nodes: int,
                 rng: np.random.Generator):
        self.spec = spec
        self.n_nodes = n_nodes
        self.rng = rng
        if spec.monitored:
            if spec.synchronized:
                self.offsets = np.zeros(n_nodes)
            else:
                self.offsets = rng.uniform(0.0, spec.interval, n_nodes)
        else:
            self.offsets = None

    def fires_in(self, t0: float, t1) -> np.ndarray:
        """Number of sampler fires per node with fire time in [t0, t1).

        ``t1`` may be scalar or an (n_nodes,) array (per-node windows).
        """
        if not self.spec.monitored:
            return np.zeros(self.n_nodes, dtype=np.int64)
        t1 = np.broadcast_to(np.asarray(t1, dtype=np.float64), (self.n_nodes,))
        iv = self.spec.interval
        lo = np.ceil((t0 - self.offsets) / iv)
        hi = np.ceil((t1 - self.offsets) / iv)
        return np.maximum(hi - lo, 0).astype(np.int64)

    def node_fire_times(self, node: int, t0: float, t1: float) -> np.ndarray:
        if not self.spec.monitored:
            return np.empty(0)
        iv = self.spec.interval
        off = self.offsets[node]
        k0 = int(np.ceil((t0 - off) / iv))
        k1 = int(np.ceil((t1 - off) / iv))
        return off + iv * np.arange(k0, k1)


@dataclass
class RunResult:
    """Outcome of one application run."""

    app: str
    spec_label: str
    wall_time: float
    phases: dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    perturbed_iterations: int = 0

    def phase(self, name: str) -> float:
        return self.phases[name]


class BspApp:
    """Bulk-synchronous application skeleton.

    One iteration is: every rank computes (compute phase), then all
    ranks synchronize and communicate (comm phase).  Iteration time::

        T_iter = max_over_nodes(compute * (1 + imbalance_n)
                                + sampler_fires_n * cost)
                 + comm * (1 + comm_jitter) * (1 + net_overhead)

    ``net_overhead`` is the monitoring traffic's share of per-node link
    bandwidth, scaled by the app's communication sensitivity — zero for
    "no net" configurations.

    Run-to-run variability (``run_sigma``) models the background the
    paper reports (e.g. the 200 s spread across unmonitored 8,192-PE
    Nalu runs): a per-run multiplicative factor on both phases.

    Subclasses define class attributes (or pass constructor overrides):
    ``name``, ``n_nodes``, ``ranks_per_node``, ``iterations``,
    ``compute_time``, ``comm_time``, ``imbalance_sigma``,
    ``comm_sigma``, ``run_sigma``, ``net_sensitivity``.
    """

    name = "bsp"
    n_nodes = 64
    ranks_per_node = 16
    iterations = 100
    compute_time = 0.05  # seconds per iteration per rank
    comm_time = 0.01
    imbalance_sigma = 0.01
    comm_sigma = 0.05
    run_sigma = 0.01
    net_sensitivity = 1.0
    link_bandwidth = 4.7e9  # bytes/s per node injection

    #: extra named phases: {phase_name: fraction_of_comm}
    phase_fractions: dict[str, float] = {}

    def __init__(self, **overrides):
        for key, value in overrides.items():
            if not hasattr(type(self), key):
                raise TypeError(f"{type(self).__name__} has no parameter {key!r}")
            setattr(self, key, value)

    # ------------------------------------------------------------------
    def net_overhead(self, spec: MonitoringSpec) -> float:
        """Fractional comm-phase slowdown from monitoring traffic."""
        if not (spec.monitored and spec.aggregation):
            return 0.0
        bps = spec.net_bytes_per_interval / spec.interval
        return self.net_sensitivity * bps / self.link_bandwidth

    def run(self, spec: MonitoringSpec, rng: np.random.Generator) -> RunResult:
        noise = NoiseModel(spec, self.n_nodes, rng)
        run_factor = float(rng.normal(1.0, self.run_sigma))
        run_factor = max(run_factor, 0.5)
        compute = self.compute_time * run_factor
        comm = self.comm_time * run_factor
        net = self.net_overhead(spec)

        t = 0.0
        total_comm = 0.0
        perturbed = 0
        cost = spec.effective_cost
        for _ in range(self.iterations):
            imb = rng.normal(0.0, self.imbalance_sigma, self.n_nodes)
            node_compute = compute * (1.0 + np.abs(imb))
            fires = noise.fires_in(t, t + node_compute)
            node_total = node_compute + fires * cost
            iter_compute = float(node_total.max())
            if fires.max() > 0 and cost > 0:
                # Did noise actually extend the critical path?
                if iter_compute > float(node_compute.max()) + 1e-12:
                    perturbed += 1
            iter_comm = comm * (1.0 + abs(float(rng.normal(0.0, self.comm_sigma))))
            iter_comm *= 1.0 + net
            t += iter_compute + iter_comm
            total_comm += iter_comm
        phases = {"comm": total_comm, "compute": t - total_comm}
        for pname, frac in self.phase_fractions.items():
            jitter = 1.0 + abs(float(rng.normal(0.0, self.comm_sigma)))
            phases[pname] = total_comm * frac * jitter
        return RunResult(
            app=self.name,
            spec_label=spec.label(),
            wall_time=t,
            phases=phases,
            iterations=self.iterations,
            perturbed_iterations=perturbed,
        )

    def ensemble(self, spec: MonitoringSpec, rng: np.random.Generator,
                 repeats: int = 3) -> list[RunResult]:
        """Repeat runs under one configuration (paper's methodology)."""
        return [self.run(spec, rng) for _ in range(repeats)]
