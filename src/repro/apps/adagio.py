"""Adagio: Sierra/SolidMechanics implicit finite elements (§V-B2).

"Adagio is a Lagrangian, three-dimensional code for finite element
analysis of solids and structures built on the Sierra Framework.  The
model used studies the high velocity impact of a conical war-head ...
Restart files are dumped to the high speed Lustre I/O subsystem ...  A
large fraction of the computation time is in the contact mechanics
which stresses the communications fabric.  The combination of the
computations, communications and I/O characteristics make this a good
application to investigate the impact of LDMS."

Chama "shares its Lustre file system with another cluster, which may
have caused contention" — modelled as a heavy-tailed I/O phase whose
variability dominates monitoring effects.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BspApp, MonitoringSpec, RunResult

__all__ = ["Adagio"]


class Adagio(BspApp):
    name = "Adagio"
    # Defaults model the 1,024-PE (64-node) member; 512 PE => n_nodes=32.
    n_nodes = 64
    ranks_per_node = 16
    iterations = 150
    compute_time = 0.60
    comm_time = 0.40  # contact search stresses the fabric
    imbalance_sigma = 0.03
    comm_sigma = 0.06
    run_sigma = 0.02
    net_sensitivity = 1.2
    phase_fractions = {"contact": 0.7, "solve": 0.3}

    #: restart dump every N iterations; duration lognormal (shared
    #: Lustre contention, §V-B intro).
    io_every = 25
    io_mean = 8.0
    io_sigma = 0.5

    def run(self, spec: MonitoringSpec, rng: np.random.Generator) -> RunResult:
        result = super().run(spec, rng)
        n_dumps = self.iterations // self.io_every
        io_time = float(
            np.sum(self.io_mean * rng.lognormal(0.0, self.io_sigma, n_dumps))
            / np.exp(self.io_sigma**2 / 2)
        )
        result.wall_time += io_time
        result.phases["io"] = io_time
        return result
