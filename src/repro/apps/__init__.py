"""Synthetic HPC application models for monitoring-impact studies.

The paper's §V experiments ask one question: *does continuous
monitoring perturb applications?*  The perturbation channels are

1. **OS noise** — the sampler occupies a core for ~400 us per sampling
   event; a rank computing on that core is delayed, and bulk-
   synchronous applications amplify one rank's delay to the whole
   iteration (Ferreira et al., cited as [26]).
2. **Network traffic** — aggregation pulls share links with the
   application ("no net" variants in Fig. 6 isolate this).

These models reproduce the paper's workloads as vectorised NumPy
computations over (nodes, ranks, iterations):

* :class:`~repro.apps.psnap.Psnap` — the PSNAP noise-profiling loop
  (Figs. 5, 8): fixed-work loops, histogram of loop durations.
* BSP applications (Figs. 6, 7): MILC, MiniGhost, IMB AllReduce,
  LinkTest, Nalu, CTH, Adagio — iteration time = max over nodes of
  (compute + noise) + communication, with per-app phase structure and
  calibrated run-to-run variability.

Monitoring is described by :class:`~repro.apps.base.MonitoringSpec`;
the paper's configurations are provided as constructors
(``MonitoringSpec.unmonitored()``, ``.interval_1s()``, ...).
"""

from repro.apps.base import MonitoringSpec, RunResult, BspApp, NoiseModel
from repro.apps.psnap import Psnap
from repro.apps.milc import Milc
from repro.apps.minighost import MiniGhost
from repro.apps.imb import ImbAllreduce
from repro.apps.linktest import LinkTest
from repro.apps.nalu import Nalu
from repro.apps.cth import Cth
from repro.apps.adagio import Adagio

__all__ = [
    "MonitoringSpec",
    "RunResult",
    "BspApp",
    "NoiseModel",
    "Psnap",
    "Milc",
    "MiniGhost",
    "ImbAllreduce",
    "LinkTest",
    "Nalu",
    "Cth",
    "Adagio",
]
