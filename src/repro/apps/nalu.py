"""Sierra Low Mach Module: Nalu (§V-B1).

"Nalu is an adaptive mesh, variable-density, acoustically
incompressible, unstructured fluid dynamics code ... Preliminary traces
... show that 47.5% of its time is spent in computation, 44% of its
time on MPI sync operations, and the last 8.5% on other MPI calls.  We
expect Nalu to be sensitive to both node and network slowdown."

At 8,192 PE "the cost of major internal phases varied widely ...
particularly for the continuity equation — a 200 second spread is seen
in the unmonitored runs", attributed to OS noise, and "the variation
present within these simulations dwarfs any speedup or slowdown caused
by the LDMS monitoring" — our acceptance criterion.
"""

from __future__ import annotations

from repro.apps.base import BspApp

__all__ = ["Nalu"]


class Nalu(BspApp):
    name = "Nalu"
    # Defaults model the 8,192-PE (512-node) ensemble member; the
    # 1,536-PE member passes n_nodes=96.
    n_nodes = 512
    ranks_per_node = 16
    iterations = 80
    compute_time = 0.95  # 47.5% compute
    comm_time = 1.05  # 44% sync + 8.5% other MPI
    imbalance_sigma = 0.03  # adaptive mesh => load imbalance
    comm_sigma = 0.06
    run_sigma = 0.035  # the 200 s spread at ~2,000 s scale
    net_sensitivity = 1.5
    phase_fractions = {
        "continuity": 0.45,  # the widely varying phase
        "momentum": 0.35,
        "other_mpi": 0.20,
    }
