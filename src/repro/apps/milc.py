"""MILC: lattice QCD (paper §V-A2).

"The test problem application was run on 2744 XE nodes with a topology
aware job submission to minimize congestion.  It uses a 64B Allreduce
payload in the Conjugate Gradient (CG) phase with a local lattice size
of 6^4.  Overall performance is a combined function of all phases, with
overall performance most dependent on the CG phase which has many
iterations per step."

The paper reports per-phase timings (Fig. 6): Llfat, Lllong, CG
iteration, GF, FF, and step.  MILC is "sensitive to interconnect
performance variation", so its comm share and net sensitivity are high;
within-phase variation is wide enough that no monitoring configuration
produces a statistically significant shift — the reproduction's
acceptance criterion.
"""

from __future__ import annotations

from repro.apps.base import BspApp

__all__ = ["Milc"]


class Milc(BspApp):
    name = "MILC"
    n_nodes = 2744
    ranks_per_node = 32
    iterations = 60  # CG iterations dominate a step
    compute_time = 0.030
    comm_time = 0.020  # allreduce-heavy
    imbalance_sigma = 0.015
    comm_sigma = 0.08  # wide observed variation (§V-A2)
    run_sigma = 0.02
    net_sensitivity = 2.0  # interconnect sensitive
    phase_fractions = {
        "CG": 0.55,
        "GF": 0.10,
        "FF": 0.10,
        "Llfat": 0.06,
        "Lllong": 0.06,
        "step": 0.13,
    }
