"""PSNAP: the OS/network noise profiling tool (paper §V-A1, §V-B4).

PSNAP "performs multiple iterations of a loop calibrated to run for a
given amount of time.  On an unloaded system, variation from the ideal
amount of time can be attributed to system noise."  The paper runs it
without barrier mode, so nodes are independent, and compares loop-time
histograms with and without LDMS sampling (Figs. 5 and 8).

Model
-----
* Every loop nominally takes ``loop_us``; intrinsic timer/pipeline
  jitter widens the peak by a half-normal factor (sigma ~0.3%).
* Background OS noise (kernel ticks, daemons) delays random loops at
  ``bg_rate`` per node-second with exponentially distributed cost —
  this produces the tail present even in unmonitored runs.
* Each LDMS sampling event delays exactly one loop of one task on its
  node.  The observed delay is a fraction of the sampler execution
  time (the OS timeslices the sampler against the victim loop): we
  draw ``delay = cost * U(0.25, 1.04)``, matching the paper's observed
  100-415 us extra-delay band for the ~400 us Blue Waters sampler.

The histogram is built exactly (bulk peak via a multinomial over the
analytic peak distribution; every tail event placed individually), so
runs with billions of nominal loops cost O(#noise events).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sstats

from repro.apps.base import MonitoringSpec, NoiseModel
from repro.util.stats import Histogram

__all__ = ["Psnap"]


@dataclass
class Psnap:
    """PSNAP configuration.

    ``iterations`` is per task; paper runs used 1M x 100 us (Chama) and
    ~minute-long runs on Blue Waters (32 tasks/node).
    """

    loop_us: float = 100.0
    iterations: int = 100_000
    tasks_per_node: int = 32
    n_nodes: int = 32
    jitter_sigma: float = 0.003  # half-normal peak width, fraction of loop
    bg_rate: float = 3.0  # background noise events per node-second
    bg_scale_us: float = 25.0  # exponential mean of background delays

    @property
    def total_loops(self) -> int:
        return self.n_nodes * self.tasks_per_node * self.iterations

    @property
    def runtime(self) -> float:
        """Approximate wall time of the loop phase, seconds."""
        return self.iterations * self.loop_us * 1e-6

    # ------------------------------------------------------------------
    def run_histogram(
        self,
        spec: MonitoringSpec,
        rng: np.random.Generator,
        lo_us: float | None = None,
        hi_us: float | None = None,
        nbins: int = 150,
    ) -> Histogram:
        """Histogram of loop durations (microseconds) for one run."""
        L = self.loop_us
        lo = lo_us if lo_us is not None else L * 0.98
        worst_plugin = max(spec.active_plugin_costs, default=0.0)
        hi = hi_us if hi_us is not None else L + 6.0 * max(
            worst_plugin * 1e6, self.bg_scale_us * 4
        )
        edges = np.linspace(lo, hi, nbins + 1)
        hist = Histogram(edges=edges)

        # --- tail: background OS noise --------------------------------
        n_bg = rng.poisson(self.bg_rate * self.runtime * self.n_nodes)
        bg_delays = rng.exponential(self.bg_scale_us, n_bg)
        bg_peak = L * (1.0 + np.abs(rng.normal(0.0, self.jitter_sigma, n_bg)))
        hist.add(bg_peak + bg_delays)

        # --- tail: sampler events --------------------------------------
        # Each active plugin fires independently (its own phase per
        # node); every fire delays one loop of one task.
        n_fires = 0
        if spec.monitored:
            for cost in spec.active_plugin_costs:
                noise = NoiseModel(spec, self.n_nodes, rng)
                fires = int(noise.fires_in(0.0, self.runtime).sum())
                n_fires += fires
                cost_us = cost * 1e6
                delays = cost_us * rng.uniform(0.25, 1.04, fires)
                peaks = L * (1.0 + np.abs(rng.normal(0.0, self.jitter_sigma, fires)))
                hist.add(peaks + delays)

        # --- bulk peak ---------------------------------------------------
        n_bulk = self.total_loops - n_bg - n_fires
        if n_bulk > 0:
            # loop = L * (1 + |N(0, sigma)|): half-normal peak.
            scale = L * self.jitter_sigma
            cdf_hi = sstats.halfnorm.cdf(np.maximum(edges[1:] - L, 0.0), scale=scale)
            cdf_lo = sstats.halfnorm.cdf(np.maximum(edges[:-1] - L, 0.0), scale=scale)
            p = cdf_hi - cdf_lo
            # Clip everything below L into the first bin containing L.
            first = int(np.searchsorted(edges, L, side="right")) - 1
            p[first] += sstats.halfnorm.cdf(max(edges[first] - L, 0.0), scale=scale)
            # Mass beyond the last edge lands in the final bin (clipping).
            p[-1] += 1.0 - cdf_hi[-1]
            p = np.clip(p, 0.0, None)
            p /= p.sum()
            hist.counts += rng.multinomial(n_bulk, p)
        return hist

    # ------------------------------------------------------------------
    def expected_sampler_tail_fraction(self, spec: MonitoringSpec) -> float:
        """Closed-form fraction of loops delayed by sampling.

        One loop per sampler fire is affected, so the fraction is
        ``runtime/interval`` fires over ``tasks*iterations`` loops per
        node — i.e. ``loop_time / (interval * tasks_per_node)``.
        """
        if not spec.monitored:
            return 0.0
        n_plugins = len(spec.active_plugin_costs)
        fires_per_node = n_plugins * self.runtime / spec.interval
        loops_per_node = self.tasks_per_node * self.iterations
        return fires_per_node / loops_per_node
