"""CTH: shock physics with AMR (§V-B3).

"CTH is a multi-material, large deformation, strong shock wave, solid
mechanics code ... a 3D shock physics problem with adaptive mesh
refinement ... processors exchange large messages (several MB in size)
with up to six other processors in the domain, with a few small message
MPI Allreduce operations.  CTH is sensitive to both node and network
slowdown."  The 1,024-core run executes 600 steps; the 7,200-core run
1,200 steps targeting ~18 minutes.  "LDMS monitoring appears to have no
effect on the run time of these CTH jobs."
"""

from __future__ import annotations

from repro.apps.base import BspApp

__all__ = ["Cth"]


class Cth(BspApp):
    name = "CTH"
    # Defaults model the 7,200-PE (450-node) member; the 1,024-PE member
    # passes n_nodes=64, iterations=600.
    n_nodes = 450
    ranks_per_node = 16
    iterations = 1200
    compute_time = 0.55
    comm_time = 0.35  # several-MB neighbour exchanges
    imbalance_sigma = 0.04  # AMR imbalance
    comm_sigma = 0.05
    run_sigma = 0.02
    net_sensitivity = 1.8
    phase_fractions = {
        "exchange": 0.80,
        "allreduce": 0.20,
    }
