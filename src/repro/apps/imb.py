"""Intel MPI Benchmarks AllReduce (§V-A5).

"We tested the Intel MPI benchmark (IMB) for MPI AllReduce on a set of
2744 nodes ... topology optimized for maximum network performance.
This test used a 64B payload and 24 tasks per node.  Overall, there is
not a correlating impact with the LDMS variants."

Pure communication: compute is negligible; every iteration is one
64-byte allreduce whose latency is dominated by tree depth and the
slowest participant (so any node's sampler fire during the operation
extends it — but a 64 B allreduce takes ~20 us, making collisions
rare).
"""

from __future__ import annotations

from repro.apps.base import BspApp

__all__ = ["ImbAllreduce"]


class ImbAllreduce(BspApp):
    name = "IMB Allreduce"
    n_nodes = 2744
    ranks_per_node = 24
    iterations = 1000
    compute_time = 1e-6  # essentially none
    comm_time = 25e-6  # 64B allreduce at scale
    imbalance_sigma = 0.02
    comm_sigma = 0.10  # collectives are noisy
    run_sigma = 0.015
    net_sensitivity = 2.0
    phase_fractions = {"allreduce": 1.0}
