"""Cray LinkTest: per-link message timing (§V-A3).

"Cray has developed an MPI program that measures the individual link
performance within a job.  For this test we measure the extreme cases
of unmonitored and monitoring at one second intervals.  We used 10,000
iterations of 8kB messages ...  The unmonitored result is X
milliseconds per packet and the monitored time is 20 nanoseconds
shorter.  The difference is not statistically significant."

LinkTest is not bulk-synchronous; it streams fixed-size messages over
one link at a time, so the model is a per-message latency sample:
``serialization + per-hop latency + jitter``, with monitoring adding
its (negligible) traffic share to the link.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import MonitoringSpec, RunResult

__all__ = ["LinkTest"]


@dataclass
class LinkTest:
    iterations: int = 10_000
    message_bytes: int = 8192
    link_bps: float = 4.68e9  # Gemini cable link
    base_latency: float = 1.4e-6
    jitter_sigma: float = 0.03

    def per_message_times(self, spec: MonitoringSpec,
                          rng: np.random.Generator) -> np.ndarray:
        """Seconds per message, one entry per iteration."""
        ser = self.message_bytes / self.link_bps
        base = self.base_latency + ser
        times = base * (1.0 + np.abs(rng.normal(0.0, self.jitter_sigma,
                                                self.iterations)))
        if spec.monitored and spec.aggregation:
            # Monitoring bytes share the link for the instants a pull is
            # in flight; amortized effect on an 8 kB message is tiny.
            share = (spec.net_bytes_per_interval / spec.interval) / self.link_bps
            times *= 1.0 + share
        return times

    def run(self, spec: MonitoringSpec, rng: np.random.Generator) -> RunResult:
        times = self.per_message_times(spec, rng)
        mean = float(times.mean())
        return RunResult(
            app="LinkTest",
            spec_label=spec.label(),
            wall_time=float(times.sum()),
            phases={"per_message": mean},
            iterations=self.iterations,
        )
