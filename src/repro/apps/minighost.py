"""MiniGhost: communication-focused finite-difference mini-app (§V-A4).

"MiniGhost is used for studying only the communications section of
similar codes.  Our instrumented version reports total run time, time
spent in communication, and time spent in a phase which includes
waiting at the barrier (GRIDSUM).  We chose input that yields 90 second
run time on 8,192 nodes."  Three repetitions were made at the extremes
(unmonitored and 1 s sampling), launched on the same nodes with an
internally computed rank ordering.  "There was no negative impact in
any measure when using LDMS at the 1 second collection interval."
"""

from __future__ import annotations

from repro.apps.base import BspApp

__all__ = ["MiniGhost"]


class MiniGhost(BspApp):
    name = "MiniGhost"
    n_nodes = 8192
    ranks_per_node = 32
    iterations = 90  # ~90 s wall target
    compute_time = 0.55
    comm_time = 0.45
    imbalance_sigma = 0.01
    comm_sigma = 0.04
    run_sigma = 0.012
    net_sensitivity = 1.5
    phase_fractions = {
        "comm_phase": 0.55,  # reported "Minighost-comm"
        "gridsum": 0.45,  # barrier-inclusive "Minighost-gridsum"
    }
