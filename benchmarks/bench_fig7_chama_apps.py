"""Fig. 7: Chama application runtime averages (NM / 20 s / 1 s)."""

from repro.experiments.fig7_chama_apps import main


def test_fig7(bench_once):
    res = bench_once(main)
    expected = {"Nalu-8192", "Nalu-1536", "CTH-7200", "CTH-1024",
                "Adagio-1024", "Adagio-512"}
    assert expected == set(res.series)
    for name, summaries in res.series.items():
        assert [s.label for s in summaries] == [
            "unmonitored", "20s interval", "1s interval"
        ]
        # Monitored means within a few percent of unmonitored.
        for s in summaries:
            assert 0.9 < s.normalized_mean < 1.1, (name, s.label)
    # Paper: "no practical impact" — nothing significant.
    assert res.any_significant() == []
