"""Fig. 5: PSNAP loop-time histogram, Blue Waters, NM vs 1 s sampling."""

from repro.experiments.common import PAPER
from repro.experiments.fig5_psnap_bw import main


def test_fig5(bench_once):
    res = bench_once(main)
    # The monitored tail gains ~1e-4..1e-6 of events (scale dependent);
    # it must match the closed-form expectation within 25%.
    assert res.extra_tail_fraction > 0
    assert abs(res.extra_tail_fraction - res.expected_tail_fraction) \
        < 0.25 * res.expected_tail_fraction
    # Extra delay band matches the paper's 100-415 us within a bin.
    assert abs(res.extra_delay_lo_us - PAPER.psnap_extra_delay_lo_us) < 30
    assert abs(res.extra_delay_hi_us - PAPER.psnap_extra_delay_hi_us) < 30
    # Both configurations saw the same total loop count.
    assert res.unmonitored.total == res.monitored.total
