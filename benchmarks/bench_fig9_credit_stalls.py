"""Fig. 9: X+ credit stalls over 24 h on the full 24x24x24 torus."""

from repro.experiments.common import PAPER
from repro.experiments.fig9_credit_stalls import main


def test_fig9_full_torus(bench_once):
    res = bench_once(main, dims=PAPER.torus_dims)
    # Max ~85% stall.
    assert abs(res.max_stall_pct - PAPER.fig9_max_stall_pct) < 5.0
    # 20-45% band persisting up to ~20 h.
    assert res.band_20_45_hours >= 15.0
    # 60+% band of ~1.5 h.
    assert 1.0 <= res.band_60_hours <= 3.0
    # The max-stall congestion region wraps around the torus in X and
    # has extent in the X direction.
    assert res.wrap_region_found
    assert res.x_extent >= 3
