"""Fig. 6: Blue Waters benchmark variation under LDMS configurations."""

from repro.experiments.fig6_bw_benchmarks import main


def test_fig6(bench_once):
    res = bench_once(main)
    # Every benchmark has all 5 configurations (unmonitored + 4).
    for name, summaries in res.series.items():
        assert len(summaries) == 5, name
        # Normalized means stay near 1: monitoring effects are inside
        # run-to-run variation (paper: "No statistically significant
        # impact was observed").
        for s in summaries:
            assert 0.8 < s.normalized_mean < 1.2, (name, s.label)
    assert res.any_significant() == []
    # The figure's 12 series are all present.
    expected = {
        "Mini-ghost wall time", "Minighost-comm", "Minighost-gridsum",
        "Linktest", "MILC Llfat", "MILC Lllong", "MILC CG iteration",
        "MILC GF", "MILC FF", "MILC step", "IMB Allreduce",
    }
    assert expected <= set(res.series)
