"""One sample→transport→store traversal of a BW-sized set.

Shared by the micro-benches (``bench_core_ops.py``) and the CI overhead
smoke (``check_obs_overhead.py``).  ``build_unit`` returns a closure
performing exactly the per-stored-sample work of the PR-1 fast path —
sampling transaction, one-sided read service + mirror install, store
record build, compiled CSV row render — optionally wrapped in the same
``repro.obs`` hooks the daemon executes (clock reads, histogram
observes, counter incs, one pipeline trace, and — since the
observability plane landed — the per-stored-update freshness observe,
the flight-recorder event, and span recording for exemplar-sampled
traces).  Timing the closure with ``instrumented=True`` vs ``False``
therefore measures the true telemetry overhead on the fast path,
independent of machine speed.
"""

from __future__ import annotations

import time

from repro.core.memory import Arena
from repro.core.metric import MetricType
from repro.core.metric_set import MetricSet
from repro.core.store import StoreRecord
from repro.obs import (
    FlightRecorder,
    FreshnessTracker,
    SpanRecorder,
    Telemetry,
    Tracer,
)
from repro.obs.spans import HOP_STORE, HOP_UPDATE

__all__ = ["N_METRICS", "build_unit"]

N_METRICS = 194  # the Blue Waters set size used throughout the benches


def build_unit(outdir, instrumented: bool, n: int = N_METRICS,
               clock=time.perf_counter):
    """Return ``(unit, close)``: the per-sample closure and a cleanup."""
    from repro.plugins.stores.csv_store import CsvStore

    mset = MetricSet.create(
        "n0/bench", "bench",
        [(f"metric_{i:03d}", MetricType.U64, 1) for i in range(n)],
        Arena(1 << 20),
    )
    values = list(range(n))
    mset.set_all(values, clock())
    mirror = MetricSet.from_meta(mset.meta_bytes(), Arena(1 << 20))
    mirror.apply_data(mset.data_bytes())

    store = CsvStore()
    store.config(path=str(outdir), buffer_lines=1 << 30)
    store.submit(StoreRecord.from_set(mirror, "n0"))  # compiles formatters
    buf = store._buffers["bench"]

    obs = Telemetry(enabled=instrumented)
    tracer = Tracer(clock, enabled=instrumented)
    # The PR-7 observability plane: freshness tracking per stored
    # update, a flight-recorder event per flush, and span recording for
    # the exemplar-sampled traces — same call shape as the daemon's
    # _complete_update/_flush_record paths.
    flight = FlightRecorder("bench", enabled=instrumented)
    spans = SpanRecorder("bench", enabled=instrumented)
    freshness = FreshnessTracker(enabled=instrumented)
    fresh = freshness.arm("n0", 1.0, 1, clock())
    flight_record = flight.record
    spans_record = spans.record
    h_sample = obs.histogram("sample.duration")
    h_update = obs.histogram("update.rtt")
    h_e2e = obs.histogram("pipeline.sample_to_store")
    h_flush = obs.histogram("store.flush")
    c_samples = obs.counter("sampler.samples")
    # transports bind counter incs once at obs-attach (Endpoint.obs setter)
    inc_reads = obs.counter("transport.rdma_reads").inc
    inc_read_bytes = obs.counter("transport.rdma_bytes").inc

    def unit():
        # sampler fire (Ldmsd._begin_sample / _finish_sample)
        t0 = clock()
        mset.set_all(values, t0)
        h_sample.observe(clock() - t0)
        c_samples.inc()
        # producer fetch: one-sided read service + mirror install
        trace = tracer.start("n0", "n0/bench")
        t_issue = trace.t_issue if trace is not None else clock()
        data = mset.data_bytes()
        inc_reads()
        inc_read_bytes(len(data))
        mirror.apply_data(data)
        now = clock()
        if trace is not None:
            trace.t_fetched = now
            trace.t_validated = now
        h_update.observe(now - t_issue)
        # store delivery (Ldmsd._deliver_to_stores / _flush_record)
        rec = StoreRecord.from_set(mirror, "n0")
        t_submit = clock()
        if trace is not None:
            trace.t_store_submit = t_submit
            trace.sample_ts = mirror.timestamp
        h_e2e.observe(max(t_submit - mirror.timestamp, 0.0))
        store.store(rec)
        buf.clear()
        t_done = clock()
        h_flush.observe(t_done - t_submit)
        if trace is not None:
            trace.t_store_done = t_done
        tracer.finish(trace, "stored")
        # observability plane (aggregator _complete_update/_flush_record)
        if fresh is not None:
            fresh.observe(mirror.timestamp, 0)
        flight_record(t_done, "store", "flush", 1, 0)
        if trace is not None:
            sid = spans.alloc()
            spans_record(1, sid, 0, HOP_UPDATE, "update", t_issue, now)
            spans_record(1, spans.alloc(), sid, HOP_STORE, "store_flush",
                         t_submit, t_done)
        return rec

    return unit, store.close
