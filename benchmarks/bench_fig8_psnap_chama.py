"""Fig. 8: PSNAP on Chama — NM vs HM_HALF vs HM."""

from repro.experiments.fig8_psnap_chama import main


def test_fig8(bench_once):
    res = bench_once(main)
    fracs = res.tail_fractions()
    # Paper: "While NM and HM HALF are comparable, there are
    # substantially more elements in the tail in HM case."
    assert fracs["HM_HALF"] < 2.0 * fracs["NM"]
    assert fracs["HM"] > 3.0 * fracs["HM_HALF"]
    # All three histograms cover the same loop population.
    totals = {k: h.total for k, h in res.histograms.items()}
    assert len(set(totals.values())) == 1
