"""Fig. 12: OOM-killed 64-node job memory profile (end-to-end pipeline)."""

from repro.experiments.fig12_oom_profile import main


def test_fig12(bench_once):
    res = bench_once(main)
    assert res.oom_killed
    assert len(res.profile.node_indices) == 64
    # The hog node approached the 64 GB node memory before the kill.
    assert res.peak_node_kb > 0.85 * res.mem_total_kb
    # Imbalance and growth "readily apparent".
    assert res.imbalance_visible
    assert res.growth_visible
    # Pre/post margins show quiet nodes.
    assert res.profile.pre_post_quiet(2 * 1024 * 1024)
