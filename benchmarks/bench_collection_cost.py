"""§IV-E: per-metric collection cost — Ganglia vs LDMS.

Regenerates the paper's comparison ("126 usec per metric for Ganglia
vs. 1.3 usec per metric for LDMS").  Two timed benches (one per
system) plus a single-shot summary printing the measured ratio.
"""

from repro.experiments.ganglia_compare import run, main


def test_collection_cost_summary(bench_once):
    res = bench_once(main)
    # Shape: Ganglia costs several times more per metric than LDMS.
    assert res.ganglia_us_per_metric > 3.0 * res.ldms_us_per_metric


def test_ldms_per_metric(benchmark):
    """Micro: one LDMS sampling sweep (meminfo + procstat)."""
    from repro.experiments.ganglia_compare import (
        MEMINFO_KEYS, _pick_fs)
    from repro.core import Ldmsd, SimEnv
    from repro.sim.engine import Engine
    from repro.transport.simfabric import SimFabric, SimTransport

    eng = Engine()
    fs, _ = _pick_fs()
    d = Ldmsd("n0", env=SimEnv(eng), fs=fs,
              transports={"sock": SimTransport(SimFabric(eng), "sock")})
    mem = d.load_sampler("meminfo", instance="n0/mem", component_id=1,
                         metrics=",".join(MEMINFO_KEYS))
    cpu = d.load_sampler("procstat", instance="n0/cpu", component_id=1)

    def sweep():
        mem.sample(0.0)
        cpu.sample(0.0)

    benchmark(sweep)


def test_ganglia_per_metric(benchmark):
    """Micro: one Ganglia collection sweep of the same metrics."""
    from repro.baselines.ganglia import GangliaMetric, Gmond
    from repro.experiments.ganglia_compare import MEMINFO_KEYS, _pick_fs
    from repro.plugins.samplers.parsers import CPU_FIELDS

    fs, _ = _pick_fs()
    modules = [GangliaMetric.meminfo(k.lower(), k) for k in MEMINFO_KEYS]
    modules += [GangliaMetric.procstat(f"cpu_{f}", f"cpu_{f}")
                for f in CPU_FIELDS]
    gmond = Gmond(fs, modules)
    benchmark(gmond.collect_and_send, 0.0)
