"""Fig. 11: Lustre opens node x time features at Chama scale."""

from repro.experiments.fig11_lustre_opens import main


def test_fig11(bench_once):
    res = bench_once(main)
    # Horizontal lines: the abusive hosts are exactly the sustained bands.
    assert res.bands_match
    # Vertical lines: both planted system-wide events detected.
    assert res.events_match
    # Full Chama scale, full day at 1-minute samples.
    assert res.opens.shape == (1440, 1296)
