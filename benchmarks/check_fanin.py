#!/usr/bin/env python
"""CI smoke: the fan-in fast paths stay fast, at full scale.

Two checks, both machine-independent:

1. **Relative regression bound.**  The at-capacity sock sweep point
   (9,216 samplers) is timed with the toggleable fast paths enabled
   (timer wheel + coalesced batch flush + GC pause + columnar arena)
   and disabled (``REPRO_TIMER_WHEEL=0`` / ``REPRO_BATCH_FLUSH=0`` /
   ``REPRO_GC_PAUSE=0`` / ``REPRO_ARENA=0``), in strict alternation
   so both variants see the same interference.  The speedup must stay
   above ``MIN_SPEEDUP``; external noise can only shrink the measured
   ratio, never inflate it, so a pass is trustworthy on shared
   runners.  The fast-path gains are superlinear in fan-in (the GC
   pause and the wheel matter most when millions of events are live),
   so the bound is checked at full scale where the signal is
   strongest — measured ~1.6x on a quiet machine before the arena
   landed, floor 1.3x.  The unconditional micro-optimisations (block
   descriptor unpack, meta memcpy mirroring, inline pool grants) have
   no off switch and are deliberately present in *both* variants.

   Event counts are *logical* events: heap-processed events plus the
   per-member events the sampler cohorts materialize inside vectorized
   sweeps (``engine.vectorized_events``).  The sum is invariant across
   the arena toggle — a cohort sweep does the same logical work the
   scalar timers and pool tasks did — so events/s stays comparable
   across variants and across releases.

2. **Full-scale knee.**  The complete full-scale sock sweep (up to
   10,229 samplers) runs once with the fast paths on; the knee must
   land exactly at the profile's 9,216-connection capacity, and the
   aggregator's live freshness tracker must report the ground-truth
   delivered/expected completeness *exactly* at the knee and at the
   over-capacity point (~0.901) — the tracker counts the same stored
   updates against the same elapsed-time expectation.  Wall times,
   event counts, and completeness per point are written to
   ``BENCH_fanin.json`` for the CI artifact.

    PYTHONPATH=src python benchmarks/check_fanin.py
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time

MIN_SPEEDUP = 1.3
TRIALS = 3
OUT_PATH = os.environ.get("BENCH_FANIN_OUT", "BENCH_fanin.json")

INTERVAL = 5.0
METRICS = 10
DURATION = 30.0

_FAST_VARS = ("REPRO_TIMER_WHEEL", "REPRO_BATCH_FLUSH", "REPRO_GC_PAUSE",
              "REPRO_ARENA")

#: Full sweep measured on the reference dev box before the fast-path
#: work landed (plain binary-heap scheduler, per-record flush, per-set
#: updates, GC always on).  Kept in the artifact so the headline
#: speedup survives alongside the current numbers.
_PRE_FASTPATH_BASELINE = {
    "total_wall_s": 80.01,
    "events_per_s": 34857,
    "wall_s_by_point": {"3225": 4.483, "6451": 12.997, "8294": 17.642,
                        "9216": 21.328, "10229": 23.556},
}


def _set_fastpath(enabled: bool) -> None:
    for var in _FAST_VARS:
        os.environ[var] = "1" if enabled else "0"


def _run_point(n: int, scale: int,
               pause_build: bool = False) -> tuple[float, int, int, float, float]:
    """Build+run one sweep point:
    (wall s, events, vectorized, completeness, tracker completeness).

    ``events`` is the logical event count — heap-processed plus
    cohort-vectorized member events — so it is invariant across the
    ``REPRO_ARENA`` toggle.  ``pause_build`` reproduces
    ``sweep_transport``'s unconditional GC pause around build+run (the
    shipped sweep path); the relative A/B leaves it off so
    ``REPRO_GC_PAUSE`` is the only GC difference.
    """
    from repro.experiments.fanin import _build

    gc.collect()
    if pause_build:
        gc.disable()
    try:
        t0 = time.perf_counter()
        eng, env, agg, agg_x, store = _build(n, "sock", INTERVAL, METRICS,
                                             DURATION, scale=scale)
        eng.run(until=DURATION)
        wall = time.perf_counter() - t0
    finally:
        if pause_build:
            gc.enable()
    expected = n * (DURATION / INTERVAL - 1)
    completeness = min(len(store.rows) / expected, 1.0)
    tracker = agg.freshness.fleet(env.now())["completeness"]
    events = eng.events_processed + eng.vectorized_events
    return wall, events, eng.vectorized_events, completeness, tracker


def check_relative() -> float:
    from repro.transport.base import get_transport_profile

    n = get_transport_profile("sock").max_connections
    best = 0.0
    for trial in range(TRIALS):
        _set_fastpath(True)
        fast_wall, fast_events, _, _, _ = _run_point(n, 1)
        _set_fastpath(False)
        slow_wall, slow_events, _, _, _ = _run_point(n, 1)
        _set_fastpath(True)
        speedup = slow_wall / fast_wall
        print(f"trial {trial}: "
              f"fast {fast_wall:6.2f}s ({int(fast_events / fast_wall)} ev/s)  "
              f"slow {slow_wall:6.2f}s ({int(slow_events / slow_wall)} ev/s)  "
              f"speedup {speedup:.2f}x")
        best = max(best, speedup)
        if best >= MIN_SPEEDUP:
            break  # already demonstrably fast enough
    return best


def check_full_scale() -> dict:
    from repro.experiments.fanin import default_sizes
    from repro.transport.base import get_transport_profile

    _set_fastpath(True)
    sizes = default_sizes("sock")
    cap = get_transport_profile("sock").max_connections
    per_point = []
    total_wall = 0.0
    total_events = 0
    for n in sizes:
        wall, events, vectorized, completeness, tracker = _run_point(
            n, scale=1, pause_build=True)
        per_point.append({"n_samplers": n, "wall_s": round(wall, 3),
                          "events": events,
                          "vectorized_events": vectorized,
                          "events_per_s": int(events / wall),
                          "completeness": round(completeness, 4),
                          "tracker_completeness": round(tracker, 4),
                          "tracker_exact": tracker == completeness})
        total_wall += wall
        total_events += events
        print(f"  n={n:6d}  wall {wall:6.2f}s  events {events:8d}  "
              f"({int(events / wall):7d} ev/s, {vectorized} vectorized)  "
              f"completeness {completeness:.4f}  tracker {tracker:.4f}")
    knee = max(p["n_samplers"] for p in per_point
               if p["completeness"] >= 0.99)
    return {
        "benchmark": "fanin_sock_full_scale",
        "transport": "sock",
        "interval_s": INTERVAL,
        "metrics_per_set": METRICS,
        "duration_s": DURATION,
        "knee": knee,
        "profile_capacity": cap,
        "points": per_point,
        "total_wall_s": round(total_wall, 2),
        "total_events": total_events,
        "events_note": ("events = heap-processed + cohort-vectorized "
                        "member events (invariant across REPRO_ARENA)"),
        "events_per_s": int(total_events / total_wall),
        "pre_fastpath_baseline": _PRE_FASTPATH_BASELINE,
        "speedup_vs_baseline": round(
            _PRE_FASTPATH_BASELINE["total_wall_s"] / total_wall, 2),
    }


def main() -> int:
    print("== relative fast-path check (sock @ full capacity) ==")
    best = check_relative()
    print(f"best speedup: {best:.2f}x  (required >= {MIN_SPEEDUP}x)")
    if best < MIN_SPEEDUP:
        print("FAIL: fast paths no longer deliver the required speedup")
        return 1

    print("\n== full-scale sock sweep ==")
    report = check_full_scale()
    with open(OUT_PATH, "w") as f:
        json.dump(report, f, indent=2)
    print(f"knee {report['knee']} (capacity {report['profile_capacity']}), "
          f"{report['total_wall_s']}s, {report['events_per_s']} events/s")
    print(f"wrote {OUT_PATH}")
    if report["knee"] != report["profile_capacity"]:
        print("FAIL: full-scale knee moved off the profile capacity")
        return 1
    # The live freshness tracker must agree with ground truth *exactly*
    # at the knee and at the over-capacity point — same delivered count,
    # same elapsed-time expectation, same clamp.
    cap = report["profile_capacity"]
    checked = [p for p in report["points"] if p["n_samplers"] >= cap]
    if not checked:
        print("FAIL: sweep never reached the knee point")
        return 1
    for p in checked:
        if not p["tracker_exact"]:
            print(f"FAIL: freshness tracker diverged from ground truth at "
                  f"n={p['n_samplers']} "
                  f"({p['tracker_completeness']} != {p['completeness']})")
            return 1
    print(f"freshness tracker exact at {[p['n_samplers'] for p in checked]}")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))), "src"))
    sys.exit(main())
