#!/usr/bin/env python
"""CI smoke: the fan-in fast paths stay fast, at full scale.

Three checks, all machine-independent:

1. **Relative regression bound.**  The at-capacity sock sweep point
   (9,216 samplers) is timed with the toggleable fast paths enabled
   (timer wheel + coalesced batch flush + GC pause + columnar arena +
   sharded runner) and disabled (``REPRO_TIMER_WHEEL=0`` /
   ``REPRO_BATCH_FLUSH=0`` / ``REPRO_GC_PAUSE=0`` / ``REPRO_ARENA=0`` /
   ``REPRO_SHARDS=0``), in strict alternation so both variants see the
   same interference.  The speedup must stay above ``MIN_SPEEDUP``;
   external noise can only shrink the measured ratio, never inflate it,
   so a pass is trustworthy on shared runners.  The fast-path gains are
   superlinear in fan-in (the GC pause and the wheel matter most when
   millions of events are live), so the bound is checked at full scale
   where the signal is strongest — measured ~1.6x on a quiet machine
   before the arena landed, floor 1.3x.  The unconditional
   micro-optimisations (block descriptor unpack, meta memcpy mirroring,
   inline pool grants) have no off switch and are deliberately present
   in *both* variants.

   ``REPRO_SHARDS`` is a worker count, not a boolean: the fast variant
   sets ``2`` (the point runs inside a forked shard worker, so the
   fork + result-pickle overhead is charged to the fast side) and the
   slow variant ``0`` (inline).  Both variants also hash every stored
   row (sha256 over (timestamp, producer, set_name, values)); the
   digests must be *identical* across all toggles — the byte-identity
   contract of the arena and of the sharded runner, enforced in CI on
   every run.

   Event counts are *logical* events: heap-processed events plus the
   per-member events the sampler cohorts materialize inside vectorized
   sweeps (``engine.vectorized_events``).  The sum is invariant across
   the arena toggle — a cohort sweep does the same logical work the
   scalar timers and pool tasks did — so events/s stays comparable
   across variants and across releases.

2. **Full-scale knee.**  The complete full-scale sock sweep (up to
   10,229 samplers) runs once, inline, with the fast paths on; the knee
   must land exactly at the profile's 9,216-connection capacity, and
   the aggregator's live freshness tracker must report the ground-truth
   delivered/expected completeness *exactly* at the knee and at the
   over-capacity point (~0.901).  Each point also records its
   build/ramp-up/steady wall split — the headline events/s drop toward
   the knee is a one-off-cost artifact, see ``phase_note`` in the
   artifact — and its row digest, which check 3 replays against.

3. **Sharded full-scale sweep.**  The same sweep runs again with the
   points fanned out across ``SHARD_WORKERS`` forked shard workers
   (``repro.sim.shard.run_parallel``).  Per-point digests must match
   check 2 byte-for-byte, the sharded knee must still equal the profile
   capacity, and the freshness tracker must stay exact.  Aggregate and
   per-worker rates land in the ``sharded`` block of
   ``BENCH_fanin.json`` together with ``host_cpus`` — on a single-core
   runner the workers serialize and the aggregate honestly reports
   that, see the block's ``note``.

    PYTHONPATH=src python benchmarks/check_fanin.py
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time

MIN_SPEEDUP = 1.3
TRIALS = 3
OUT_PATH = os.environ.get("BENCH_FANIN_OUT", "BENCH_fanin.json")

INTERVAL = 5.0
METRICS = 10
DURATION = 30.0

#: Fan-out of the sharded sweep (check 3).  Workers are forked
#: processes; on a host with fewer cores they serialize harmlessly.
SHARD_WORKERS = 4

_FAST_VARS = ("REPRO_TIMER_WHEEL", "REPRO_BATCH_FLUSH", "REPRO_GC_PAUSE",
              "REPRO_ARENA")

#: Full sweep measured on the reference dev box before the fast-path
#: work landed (plain binary-heap scheduler, per-record flush, per-set
#: updates, GC always on).  Kept in the artifact so the headline
#: speedup survives alongside the current numbers.
_PRE_FASTPATH_BASELINE = {
    "total_wall_s": 80.01,
    "events_per_s": 34857,
    "wall_s_by_point": {"3225": 4.483, "6451": 12.997, "8294": 17.642,
                        "9216": 21.328, "10229": 23.556},
}


def _set_fastpath(enabled: bool) -> None:
    for var in _FAST_VARS:
        os.environ[var] = "1" if enabled else "0"
    # Not a boolean: worker count.  Fast = point inside a forked shard
    # worker (fork overhead charged to the fast side), slow = inline.
    os.environ["REPRO_SHARDS"] = "2" if enabled else "0"


def _measure(n: int, scale: int, pause_build: bool = False) -> dict:
    """Build+run one sweep point in *this* process; returns a dict with
    the wall split (build / ramp-up / steady), logical event counts,
    completeness, and the row digest.

    ``events`` is the logical event count — heap-processed plus
    cohort-vectorized member events — so it is invariant across the
    ``REPRO_ARENA`` toggle.  ``pause_build`` reproduces
    ``sweep_transport``'s unconditional GC pause around build+run (the
    shipped sweep path); the relative A/B leaves it off so
    ``REPRO_GC_PAUSE`` is the only GC difference.
    """
    from repro.experiments.fanin import _build, _rows_digest

    gc.collect()
    if pause_build:
        gc.disable()
    try:
        t0 = time.perf_counter()
        eng, env, agg, agg_x, store = _build(n, "sock", INTERVAL, METRICS,
                                             DURATION, scale=scale)
        t1 = time.perf_counter()
        eng.run(until=min(INTERVAL, DURATION))
        ramp_events = eng.events_processed + eng.vectorized_events
        t2 = time.perf_counter()
        eng.run(until=DURATION)
        t3 = time.perf_counter()
    finally:
        if pause_build:
            gc.enable()
    expected = n * (DURATION / INTERVAL - 1)
    completeness = min(len(store.rows) / expected, 1.0)
    tracker = agg.freshness.fleet(env.now())["completeness"]
    events = eng.events_processed + eng.vectorized_events
    steady_s = t3 - t2
    return {
        "wall": t3 - t0,
        "build_s": t1 - t0,
        "rampup_s": t2 - t1,
        "steady_s": steady_s,
        "events": events,
        "steady_events": events - ramp_events,
        "steady_events_per_s": int((events - ramp_events) / steady_s)
        if steady_s > 0 else 0,
        "vectorized": eng.vectorized_events,
        "completeness": completeness,
        "tracker": tracker,
        "digest": _rows_digest(store),
    }


def _run_point(n: int, scale: int, pause_build: bool = False) -> dict:
    """One sweep point, honouring ``REPRO_SHARDS``: inline when off,
    inside a forked shard worker when >= 2 (the wall then includes the
    fork and result pickling — the full cost of the sharded path)."""
    from repro.sim.shard import run_parallel, shards_default

    if shards_default() < 2:
        return _measure(n, scale, pause_build)
    t0 = time.perf_counter()
    (res,) = run_parallel(lambda m: _measure(m, scale, pause_build), [n], 1)
    res["wall"] = time.perf_counter() - t0
    return res


def check_relative() -> tuple[float, bool]:
    from repro.transport.base import get_transport_profile

    n = get_transport_profile("sock").max_connections
    best = 0.0
    identical = True
    for trial in range(TRIALS):
        _set_fastpath(True)
        fast = _run_point(n, 1)
        _set_fastpath(False)
        slow = _run_point(n, 1)
        _set_fastpath(True)
        speedup = slow["wall"] / fast["wall"]
        match = fast["digest"] == slow["digest"]
        identical = identical and match
        print(f"trial {trial}: "
              f"fast {fast['wall']:6.2f}s "
              f"({int(fast['events'] / fast['wall'])} ev/s)  "
              f"slow {slow['wall']:6.2f}s "
              f"({int(slow['events'] / slow['wall'])} ev/s)  "
              f"speedup {speedup:.2f}x  "
              f"rows {'identical' if match else 'DIVERGED'}")
        best = max(best, speedup)
        if best >= MIN_SPEEDUP and identical:
            break  # already demonstrably fast enough
    return best, identical


def _point_row(n: int, res: dict) -> dict:
    return {"n_samplers": n, "wall_s": round(res["wall"], 3),
            "build_s": round(res["build_s"], 3),
            "rampup_s": round(res["rampup_s"], 3),
            "steady_s": round(res["steady_s"], 3),
            "events": res["events"],
            "vectorized_events": res["vectorized"],
            "events_per_s": int(res["events"] / res["wall"]),
            "steady_events_per_s": res["steady_events_per_s"],
            "completeness": round(res["completeness"], 4),
            "tracker_completeness": round(res["tracker"], 4),
            "tracker_exact": res["tracker"] == res["completeness"],
            "rows_sha256": res["digest"]}


def check_full_scale() -> dict:
    from repro.experiments.fanin import default_sizes
    from repro.transport.base import get_transport_profile

    _set_fastpath(True)
    os.environ["REPRO_SHARDS"] = "0"  # inline: the sharded A/B reference
    sizes = default_sizes("sock")
    cap = get_transport_profile("sock").max_connections
    per_point = []
    total_wall = 0.0
    total_events = 0
    for n in sizes:
        res = _run_point(n, scale=1, pause_build=True)
        per_point.append(_point_row(n, res))
        total_wall += res["wall"]
        total_events += res["events"]
        print(f"  n={n:6d}  wall {res['wall']:6.2f}s "
              f"(build {res['build_s']:.2f} ramp {res['rampup_s']:.2f} "
              f"steady {res['steady_s']:.2f})  events {res['events']:8d}  "
              f"({int(res['events'] / res['wall']):7d} ev/s, "
              f"{res['steady_events_per_s']} steady)  "
              f"completeness {res['completeness']:.4f}  "
              f"tracker {res['tracker']:.4f}")
    knee = max(p["n_samplers"] for p in per_point
               if p["completeness"] >= 0.99)
    return {
        "benchmark": "fanin_sock_full_scale",
        "transport": "sock",
        "interval_s": INTERVAL,
        "metrics_per_set": METRICS,
        "duration_s": DURATION,
        "knee": knee,
        "profile_capacity": cap,
        "points": per_point,
        "total_wall_s": round(total_wall, 2),
        "total_events": total_events,
        "events_note": ("events = heap-processed + cohort-vectorized "
                        "member events (invariant across REPRO_ARENA)"),
        "phase_note": ("headline events_per_s divides by the whole "
                       "point wall; build (topology + daemon "
                       "construction) and ramp-up (the n-producer "
                       "connect storm and first-sample set creation) "
                       "are one-off costs that grow with n but "
                       "amortize over only 30 simulated seconds, which "
                       "is why the rate falls toward the 9,216 knee "
                       "while steady_events_per_s stays flat"),
        "events_per_s": int(total_events / total_wall),
        "pre_fastpath_baseline": _PRE_FASTPATH_BASELINE,
        "speedup_vs_baseline": round(
            _PRE_FASTPATH_BASELINE["total_wall_s"] / total_wall, 2),
    }


def check_sharded(inline: dict) -> dict:
    """Check 3: the full sweep fanned out across forked shard workers.

    Byte-identity is the gate: every point's row digest must equal the
    inline sweep's digest for the same point.  Rates are reported
    honestly — ``aggregate_events_per_s`` divides total events by the
    parent's wall clock, so on a host with fewer cores than workers it
    reflects the serialized schedule, not an idealized speedup.
    """
    from repro.experiments.fanin import default_sizes
    from repro.sim.shard import run_parallel

    _set_fastpath(True)
    os.environ["REPRO_SHARDS"] = "0"  # workers run their points inline
    sizes = default_sizes("sock")
    nworkers = max(1, min(SHARD_WORKERS, len(sizes)))
    t0 = time.perf_counter()
    results = run_parallel(lambda n: _measure(n, 1, pause_build=True),
                           sizes, nworkers)
    wall = time.perf_counter() - t0
    per_point = [_point_row(n, res) for n, res in zip(sizes, results)]
    inline_digests = {p["n_samplers"]: p["rows_sha256"]
                      for p in inline["points"]}
    digests_match = all(p["rows_sha256"] == inline_digests[p["n_samplers"]]
                        for p in per_point)
    total_events = sum(p["events"] for p in per_point)
    per_worker = []
    for w in range(nworkers):
        mine = per_point[w::nworkers]
        wwall = sum(p["wall_s"] for p in mine)
        wevents = sum(p["events"] for p in mine)
        per_worker.append({
            "worker": w,
            "points": [p["n_samplers"] for p in mine],
            "wall_s": round(wwall, 3),
            "events": wevents,
            "events_per_s": int(wevents / wwall) if wwall > 0 else 0,
        })
        print(f"  worker {w}: points {per_worker[-1]['points']}  "
              f"wall {wwall:6.2f}s  {per_worker[-1]['events_per_s']} ev/s")
    knee = max(p["n_samplers"] for p in per_point
               if p["completeness"] >= 0.99)
    host_cpus = os.cpu_count() or 1
    print(f"  sharded sweep: {nworkers} workers on {host_cpus} cpu(s), "
          f"{wall:.2f}s wall, {int(total_events / wall)} aggregate ev/s, "
          f"digests {'identical' if digests_match else 'DIVERGED'}")
    return {
        "workers": nworkers,
        "host_cpus": host_cpus,
        "wall_s": round(wall, 2),
        "total_events": total_events,
        "aggregate_events_per_s": int(total_events / wall),
        "per_worker": per_worker,
        "points": per_point,
        "knee": knee,
        "digests_match_inline": digests_match,
        "target_events_per_s": 1_000_000,
        "note": (f"measured on a {host_cpus}-cpu host: with fewer cores "
                 "than workers the forked workers serialize, so "
                 "aggregate_events_per_s honestly tracks the inline "
                 "rate plus fork overhead; the shards share nothing "
                 "and their outputs are byte-identical to the inline "
                 "sweep (digests_match_inline), so the aggregate "
                 "scales with cores — the 1M events/s target needs "
                 "roughly target/per_worker events_per_s cores"),
    }


def main() -> int:
    print("== relative fast-path check (sock @ full capacity) ==")
    best, identical = check_relative()
    print(f"best speedup: {best:.2f}x  (required >= {MIN_SPEEDUP}x)")
    if best < MIN_SPEEDUP:
        print("FAIL: fast paths no longer deliver the required speedup")
        return 1
    if not identical:
        print("FAIL: fast/slow variants produced different stored rows — "
              "the arena/shard byte-identity contract is broken")
        return 1

    print("\n== full-scale sock sweep (inline) ==")
    report = check_full_scale()
    print(f"knee {report['knee']} (capacity {report['profile_capacity']}), "
          f"{report['total_wall_s']}s, {report['events_per_s']} events/s")
    if report["knee"] != report["profile_capacity"]:
        print("FAIL: full-scale knee moved off the profile capacity")
        return 1
    # The live freshness tracker must agree with ground truth *exactly*
    # at the knee and at the over-capacity point — same delivered count,
    # same elapsed-time expectation, same clamp.
    cap = report["profile_capacity"]
    checked = [p for p in report["points"] if p["n_samplers"] >= cap]
    if not checked:
        print("FAIL: sweep never reached the knee point")
        return 1
    for p in checked:
        if not p["tracker_exact"]:
            print(f"FAIL: freshness tracker diverged from ground truth at "
                  f"n={p['n_samplers']} "
                  f"({p['tracker_completeness']} != {p['completeness']})")
            return 1
    print(f"freshness tracker exact at {[p['n_samplers'] for p in checked]}")

    print(f"\n== full-scale sock sweep (sharded, {SHARD_WORKERS} workers) ==")
    sharded = check_sharded(report)
    report["sharded"] = sharded
    with open(OUT_PATH, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {OUT_PATH}")
    if not sharded["digests_match_inline"]:
        print("FAIL: sharded sweep rows diverged from the inline sweep — "
              "the shard byte-identity contract is broken")
        return 1
    if sharded["knee"] != report["profile_capacity"]:
        print("FAIL: sharded knee moved off the profile capacity")
        return 1
    for p in sharded["points"]:
        if p["n_samplers"] >= cap and not p["tracker_exact"]:
            print(f"FAIL: sharded freshness tracker diverged at "
                  f"n={p['n_samplers']}")
            return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))), "src"))
    sys.exit(main())
