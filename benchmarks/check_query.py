#!/usr/bin/env python
"""CI smoke: the query/serving tier holds its shape at reduced scale.

Runs the :mod:`repro.experiments.query_load` client-population
experiment (pollers + alert evaluators + range scanners against one
aggregator) twice and checks the properties that define the tier, all
machine-independent:

1. **Traffic served.**  Every client class got replies; reply count
   tracks request count (the only shortfall allowed is requests still
   in flight at the horizon).
2. **Cache effectiveness.**  The hot-window + LRU cache answers the
   dashboard-heavy mix: hit rate must clear ``MIN_HIT_PERMILLE``
   (dashboards poll the hot window; evaluators repeat identical rollup
   queries — the measured smoke-scale rate is ~90%+, floor 600‰).
3. **Latency sanity.**  Served p50/p95/p99 are simulated quantities
   (worker-pool queueing + per-row cost), so they are *exact* across
   runs and must be non-zero and ordered p50 <= p95 <= p99.
4. **Determinism.**  The same-seed replay fingerprint — every counter,
   every quantile, and the SHA-256 of the SOS container bytes — must
   match exactly.

Writes the full trajectory to ``BENCH_query.json`` for the CI
artifact.

    PYTHONPATH=src python benchmarks/check_query.py
"""

from __future__ import annotations

import json
import os
import sys
import time

MIN_HIT_PERMILLE = 600
OUT_PATH = os.environ.get("BENCH_QUERY_OUT", "BENCH_query.json")

N_SAMPLERS = 8
N_METRICS = 6
INTERVAL = 1.0
DURATION = 120.0


def main() -> int:
    from repro.experiments import query_load

    t0 = time.perf_counter()
    out = query_load.main([
        "--samplers", str(N_SAMPLERS),
        "--metrics", str(N_METRICS),
        "--interval", str(INTERVAL),
        "--duration", str(DURATION),
        "--out", OUT_PATH,
    ])
    wall = time.perf_counter() - t0
    r = out["run"]

    failures = []
    for kind in ("poller", "evaluator", "scanner"):
        s = getattr(r, kind)
        if s.replies == 0:
            failures.append(f"{kind}: no replies served")
        if s.sent - s.replies > s.clients:
            failures.append(
                f"{kind}: {s.sent - s.replies} unanswered requests "
                f"(> {s.clients} in-flight allowance)")
    if r.cache_hit_permille < MIN_HIT_PERMILLE:
        failures.append(
            f"cache hit rate {r.cache_hit_permille}‰ under the "
            f"{MIN_HIT_PERMILLE}‰ floor")
    if not (0 < r.serve_us_p50 <= r.serve_us_p95 <= r.serve_us_p99):
        failures.append(
            f"served quantiles broken: p50={r.serve_us_p50} "
            f"p95={r.serve_us_p95} p99={r.serve_us_p99}")
    if r.rows_served == 0:
        failures.append("no rows served")
    if not out["deterministic"]:
        failures.append("same-seed replay diverged")

    with open(OUT_PATH, "r", encoding="utf-8") as f:
        doc = json.load(f)
    doc["wall_s"] = round(wall, 3)
    with open(OUT_PATH, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1, sort_keys=True)

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print(f"query smoke ok: {r.query_requests} requests, "
          f"{r.cache_hit_permille / 10:.1f}% cached, "
          f"p99 {r.serve_us_p99}us, deterministic, {wall:.1f}s wall")
    return 0


if __name__ == "__main__":
    sys.exit(main())
