"""Benchmark-suite configuration.

Heavy experiment benches run exactly once per session (``--benchmark-only``
still reports their wall time); micro benches use normal calibration.
"""

import pytest


def once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_once(benchmark):
    def _run(fn, *args, **kwargs):
        return once(benchmark, fn, *args, **kwargs)

    return _run
