"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation isolates one LDMS design decision and measures what it
buys, using the same substrates as the main experiments:

* pull + data-only updates vs push-with-metadata (Ganglia model);
* data-only update vs whole-set transfer;
* synchronous vs asynchronous sampling (perturbed iterations);
* RDMA (zero target CPU) vs sock (target CPU per fetch).
"""

import numpy as np
import pytest

from repro.apps.base import MonitoringSpec, NoiseModel
from repro.apps.minighost import MiniGhost
from repro.baselines.ganglia import GangliaMetric, Gmond
from repro.core import Ldmsd, SimEnv
from repro.core.metric import MetricType
from repro.core.metric_set import MetricSet
from repro.core.memory import Arena
from repro.sim.engine import Engine
from repro.transport.simfabric import SimFabric, SimTransport
from repro.util.rngtools import spawn_rng


def test_ablation_pull_vs_push_bytes(benchmark):
    """Daily wire bytes per node: LDMS data-only pulls vs Ganglia
    metadata-on-every-send pushes (same 194 metrics, 60 s period)."""
    arena = Arena(1 << 20)
    mset = MetricSet.create(
        "n0/bw", "bw",
        [(f"metric_{i:03d}", MetricType.U64, 1) for i in range(194)], arena,
    )
    sends_per_day = 86400 // 60

    def ldms_day() -> int:
        total = len(mset.meta_bytes())  # metadata once, at lookup
        for _ in range(sends_per_day):
            total += len(mset.data_bytes())
        return total

    ldms_bytes = benchmark(ldms_day)

    # Ganglia: every metric, every send, carries its metadata.
    gmetad_bytes = 0

    class _Sink:
        def receive(self, host, metric, t, value, message):
            nonlocal gmetad_bytes
            gmetad_bytes += len(message)

    eng = Engine()
    from repro.nodefs.host import HostModel

    host = HostModel("n0", clock=lambda: eng.now)
    modules = [GangliaMetric.meminfo(f"m{i}", "MemFree") for i in range(194)]
    gmond = Gmond(host.fs, modules, value_threshold=0.0, sink=_Sink())
    gmond.collect_and_send(0.0)
    ganglia_bytes_per_day = gmetad_bytes * sends_per_day

    print(f"\nLDMS bytes/node/day:    {ldms_bytes:,}")
    print(f"Ganglia bytes/node/day: {ganglia_bytes_per_day:,}")
    assert ganglia_bytes_per_day > 5 * ldms_bytes


def test_ablation_data_only_updates(benchmark):
    """Wire bytes: data-chunk updates vs whole-set transfers (~10x)."""
    arena = Arena(1 << 20)
    mset = MetricSet.create(
        "n0/syn", "syn",
        [(f"metric_{i:03d}", MetricType.U64, 1) for i in range(200)], arena,
    )

    def both():
        return len(mset.data_bytes()), mset.total_size

    data_bytes, total_bytes = benchmark(both)
    ratio = total_bytes / data_bytes
    print(f"\nfull-set/data-only transfer ratio: {ratio:.1f}x")
    assert 5.0 < ratio < 20.0  # paper: data ~10% of set size


def test_ablation_synchronous_sampling(bench_once):
    """Synchronized sampling bounds perturbed iterations (§V-A1)."""
    rng = spawn_rng(3, "ablation-sync")
    app = MiniGhost(n_nodes=256)

    def run_pair():
        async_spec = MonitoringSpec(interval=1.0, synchronized=False)
        sync_spec = MonitoringSpec(interval=1.0, synchronized=True)
        r_async = [app.run(async_spec, rng) for _ in range(3)]
        r_sync = [app.run(sync_spec, rng) for _ in range(3)]
        return (np.mean([r.perturbed_iterations for r in r_async]),
                np.mean([r.perturbed_iterations for r in r_sync]))

    n_async, n_sync = bench_once(run_pair)
    print(f"\nperturbed iterations: async={n_async:.0f} sync={n_sync:.0f}")
    # With wall-aligned fires, all nodes absorb noise in the same
    # iterations, so strictly fewer iterations are touched.
    assert n_sync <= n_async


def test_ablation_rdma_vs_sock_target_cpu(bench_once):
    """RDMA pulls consume no sampler CPU; sock pulls do (Fig. 2 {f})."""

    def run_xprt(xprt: str) -> float:
        eng = Engine()
        env = SimEnv(eng)
        fabric = SimFabric(eng)
        from repro.sim.resources import CpuCore

        core = CpuCore()
        samp = Ldmsd("n0", env=env, core=core,
                     transports={xprt: SimTransport(fabric, xprt,
                                                    node_id="n0", core=core)})
        samp.load_sampler("synthetic", instance="n0/syn", component_id=1,
                          num_metrics=100)
        samp.start_sampler("n0/syn", interval=1.0)
        samp.listen(xprt, "n0:411")
        agg = Ldmsd("agg", env=env,
                    transports={xprt: SimTransport(fabric, xprt, node_id="agg")})
        agg.add_producer("n0", xprt, "n0:411", interval=1.0,
                         sets=("n0/syn",))
        eng.run(until=60.0)
        # Noise tagged "netmon" is fetch-servicing CPU on the sampler.
        return sum(r.duration for r in core.records() if r.tag == "netmon")

    def both():
        return run_xprt("sock"), run_xprt("rdma")

    sock_cpu, rdma_cpu = bench_once(both)
    print(f"\nsampler-node fetch CPU over 60s: sock={sock_cpu * 1e6:.0f}us "
          f"rdma={rdma_cpu * 1e6:.0f}us")
    assert rdma_cpu == 0.0
    assert sock_cpu > 0.0


def test_ablation_sampling_cost_vs_interval(bench_once):
    """Sampler CPU share scales inversely with the interval — the knob
    behind 'deployable on a continuous basis' (§I): ~0.04% of a core at
    1 s, ~0.002% at 20 s."""

    def run_interval(interval: float) -> float:
        eng = Engine()
        env = SimEnv(eng)
        fabric = SimFabric(eng)
        from repro.sim.resources import CpuCore

        core = CpuCore()
        d = Ldmsd("n0", env=env, core=core,
                  transports={"rdma": SimTransport(fabric, "rdma", core=core)})
        d.load_sampler("synthetic", instance="n0/syn", component_id=1,
                       num_metrics=194)
        d.start_sampler("n0/syn", interval=interval)
        eng.run(until=120.0)
        return core.busy_total / 120.0

    def sweep():
        return {iv: run_interval(iv) for iv in (1.0, 20.0, 60.0)}

    shares = bench_once(sweep)
    print("\nsampler core share by interval:",
          {k: f"{v:.5%}" for k, v in shares.items()})
    # Paper §IV-D: "a few hundredths of a percent of a core" at 1 s.
    assert 1e-4 < shares[1.0] < 1e-3
    assert shares[20.0] < shares[1.0] / 10
