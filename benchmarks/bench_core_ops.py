"""Micro-benchmarks of the hot core operations.

These are the operations whose cost model the simulator parameterises
(sampling cost per metric, update processing, store formatting); the
benches keep the implementation honest about them.
"""

import numpy as np

from repro.core import wire
from repro.core.memory import Arena
from repro.core.metric import MetricType
from repro.core.metric_set import MetricSet


def _make_set(n=194):
    arena = Arena(1 << 20)
    return MetricSet.create(
        "n0/bench", "bench",
        [(f"metric_{i:03d}", MetricType.U64, 1) for i in range(n)], arena,
    )


def test_set_all_194_metrics(benchmark):
    """One full sampling transaction of a BW-sized set."""
    mset = _make_set(194)
    values = list(range(194))
    benchmark(mset.set_all, values, 1.0)


def test_set_value_single(benchmark):
    mset = _make_set(16)
    mset.begin_transaction()
    benchmark(mset.set_value, 3, 12345)


def test_data_bytes_copy(benchmark):
    """The producer-side cost of servicing one one-sided read."""
    mset = _make_set(194)
    mset.set_all(list(range(194)), 1.0)
    out = benchmark(mset.data_bytes)
    assert len(out) == mset.data_size


def test_apply_data(benchmark):
    """The consumer-side cost of installing one update."""
    src = _make_set(194)
    src.set_all(list(range(194)), 1.0)
    mirror = MetricSet.from_meta(src.meta_bytes(), Arena(1 << 20))
    data = src.data_bytes()
    benchmark(mirror.apply_data, data)


def test_values_bulk_decode(benchmark):
    """Whole-row decode of a BW-sized set (the store pipeline path)."""
    mset = _make_set(194)
    mset.set_all(list(range(194)), 1.0)
    out = benchmark(mset.values_tuple)
    assert len(out) == 194


def test_values_array_decode(benchmark):
    """numpy bulk decode of a homogeneous U64 set (analysis path)."""
    mset = _make_set(194)
    mset.set_all(list(range(194)), 1.0)
    out = benchmark(mset.values_array)
    assert len(out) == 194 and int(out[5]) == 5


def test_store_record_from_set(benchmark):
    """Building one StoreRecord from a mirrored set (per stored sample)."""
    from repro.core.store import StoreRecord

    mset = _make_set(194)
    mset.set_all(list(range(194)), 1.0)
    rec = benchmark(StoreRecord.from_set, mset, "n0")
    assert len(rec.values) == 194


def test_csv_row_render(benchmark, tmp_path):
    """Formatting one 194-column CSV row (the store-side hot loop)."""
    from repro.core.store import StoreRecord
    from repro.plugins.stores.csv_store import CsvStore

    mset = _make_set(194)
    mset.set_all(list(range(194)), 1.0)
    rec = StoreRecord.from_set(mset, "n0")
    store = CsvStore()
    store.config(path=str(tmp_path), buffer_lines=1 << 30)
    store.submit(rec)  # creates the file / compiles the formatters
    buf = store._buffers[rec.schema]

    def render():
        store.store(rec)
        buf.clear()

    benchmark(render)
    store.close()


def test_frame_decoder_stream(benchmark):
    """Decoding a 64-frame burst through one persistent stream decoder."""
    payload = bytes(2048)
    raw = b"".join(
        wire.encode_frame(wire.MsgType.UPDATE_REPLY, i, payload) for i in range(64)
    )
    dec = wire.FrameDecoder()
    frames = benchmark(dec.feed, raw)
    assert len(frames) == 64


def test_wire_frame_roundtrip(benchmark):
    payload = bytes(2048)

    def roundtrip():
        raw = wire.encode_frame(wire.MsgType.UPDATE_REPLY, 7, payload)
        return wire.decode_frame(raw)

    frame = benchmark(roundtrip)
    assert frame.payload == payload


def test_arena_alloc_free(benchmark):
    arena = Arena(1 << 20)

    def cycle():
        offs = [arena.alloc(256) for _ in range(64)]
        for off in offs:
            arena.free(off)

    benchmark(cycle)


def test_meminfo_parse(benchmark):
    """Parser cost on a realistic meminfo body."""
    from repro.nodefs.host import HostModel
    from repro.plugins.samplers.parsers import parse_meminfo

    host = HostModel("n0", clock=lambda: 0.0)
    text = host.fs.read("/proc/meminfo")
    out = benchmark(parse_meminfo, text)
    assert out["MemTotal"] > 0


def test_pipeline_unit_bare(benchmark, tmp_path):
    """Full sample→transport→store traversal, telemetry disabled.

    The composed PR-1 fast path: one sampling transaction, one
    one-sided read service + mirror install, one store record build and
    CSV row render.  Baseline for the instrumented variant below.
    """
    from pipeline_unit import build_unit

    unit, close = build_unit(tmp_path, instrumented=False)
    benchmark(unit)
    close()


def test_pipeline_unit_instrumented(benchmark, tmp_path):
    """Same traversal with live telemetry: the hooks the daemon runs
    per stored sample (stage histograms, counters, pipeline trace).
    Must stay within 5% of the bare variant — asserted by
    ``check_obs_overhead.py`` in CI."""
    from pipeline_unit import build_unit

    unit, close = build_unit(tmp_path, instrumented=True)
    benchmark(unit)
    close()


def test_obs_histogram_observe(benchmark):
    """The single hottest telemetry call: one histogram observation."""
    from repro.obs import Telemetry

    h = Telemetry(enabled=True).histogram("bench")
    benchmark(h.observe, 12.5e-6)
    assert h.count > 0


def test_obs_disabled_noop(benchmark):
    """The disabled-registry null instrument (cost of leaving hooks in)."""
    from repro.obs import Telemetry

    h = Telemetry(enabled=False).histogram("bench")
    benchmark(h.observe, 12.5e-6)


def test_flow_engine_accumulate(benchmark):
    """One integration step over the full 24^3 torus link arrays."""
    from repro.network.torus import GeminiTorus
    from repro.network.traffic import FlowEngine

    torus = GeminiTorus(dims=(24, 24, 24))
    engine = FlowEngine(torus)
    rng = np.random.default_rng(1)
    for _ in range(200):
        a, b = rng.integers(0, torus.n_nodes, 2)
        if a != b:
            engine.add_flow(int(a), int(b), 1e9)
    benchmark(engine.accumulate, 60.0)
