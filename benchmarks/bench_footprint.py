"""§IV-D resource footprints (set sizes, memory, data volumes)."""

from repro.experiments.common import PAPER
from repro.experiments.footprint import main


def test_footprint(bench_once):
    chama, bw = bench_once(main)
    # Shape assertions against the paper's numbers.
    assert 0.5 * PAPER.chama_set_bytes < chama.set_bytes < 1.5 * PAPER.chama_set_bytes
    assert 0.5 * PAPER.bw_set_bytes < bw.set_bytes < 1.5 * PAPER.bw_set_bytes
    assert 0.05 < chama.data_fraction < 0.2
    assert 0.05 < bw.data_fraction < 0.2
    assert chama.sampler_arena_bytes < PAPER.sampler_mem_limit
    assert bw.sampler_arena_bytes < PAPER.sampler_mem_limit
    # Daily CSV within a small factor of the paper's volumes.
    assert 0.3 * PAPER.chama_daily_csv_gb < chama.daily_csv_gb < 3 * PAPER.chama_daily_csv_gb
    assert 0.3 * PAPER.bw_daily_csv_gb < bw.daily_csv_gb < 3 * PAPER.bw_daily_csv_gb
    # Per-interval wire volume (the 5 MB / 44 MB numbers).
    assert 3e6 < chama.wire_bytes_per_interval < 8e6
    assert 25e6 < bw.wire_bytes_per_interval < 70e6
