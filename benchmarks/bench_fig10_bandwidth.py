"""Fig. 10: percent theoretical max bandwidth (Y+), full torus."""

from repro.experiments.common import PAPER
from repro.experiments.fig10_bandwidth import main


def test_fig10_full_torus(bench_once):
    res = bench_once(main, dims=PAPER.torus_dims)
    # Max ~63% of theoretical link bandwidth.
    assert abs(res.max_bw_pct - PAPER.fig10_max_bw_pct) < 8.0
    # "significantly higher than typically observed values".
    assert res.stands_out
