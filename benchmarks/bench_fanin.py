"""§IV-A fan-in limits by transport + §IV-D aggregator utilization."""

from repro.experiments.fanin import SCALE, main, max_fanin
from repro.transport.base import get_transport_profile


def test_fanin_sweep(bench_once):
    results = bench_once(main)
    sock_knee = max_fanin(results["sock"]) * SCALE
    rdma_knee = max_fanin(results["rdma"]) * SCALE
    ugni_knee = max_fanin(results["ugni"]) * SCALE
    # Paper: ~9,000:1 for sock and IB RDMA; >15,000:1 for ugni.
    assert 8000 <= sock_knee <= 10000
    assert 8000 <= rdma_knee <= 10000
    assert ugni_knee > 15000
    assert ugni_knee > sock_knee
    # Knees coincide with the profile capacities.
    assert sock_knee == get_transport_profile("sock").max_connections
    # Aggregator utilization: first-level Chama aggregator well under 1
    # core; BW configuration hotter but sub-core in our model.
    chama, bw = results["utilization"]
    assert chama.core_pct < 1.0
    assert bw.core_pct < 100.0
