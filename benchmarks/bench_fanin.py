"""§IV-A fan-in limits by transport + §IV-D aggregator utilization.

Two tiers: a scaled (capacities / 64) three-transport smoke that keeps
the paper's cross-transport ordering cheap to check, and a full-scale
sock sweep — the engine fast paths (timer wheel, coalesced updates,
batched flush, GC pause) make a 9,216-sampler sweep tractable in one
process, so the knee is found at the real profile constant rather than
projected from scaled units.
"""

from repro.experiments.fanin import main, max_fanin, sweep_transport
from repro.transport.base import get_transport_profile

SMOKE_SCALE = 64


def test_fanin_sweep_scaled(bench_once):
    results = bench_once(main, scale=SMOKE_SCALE)
    sock_knee = max_fanin(results["sock"]) * SMOKE_SCALE
    rdma_knee = max_fanin(results["rdma"]) * SMOKE_SCALE
    ugni_knee = max_fanin(results["ugni"]) * SMOKE_SCALE
    # Paper: ~9,000:1 for sock and IB RDMA; >15,000:1 for ugni.
    assert 8000 <= sock_knee <= 10000
    assert 8000 <= rdma_knee <= 10000
    assert ugni_knee > 15000
    assert ugni_knee > sock_knee
    # Knees coincide with the profile capacities.
    assert sock_knee == get_transport_profile("sock").max_connections
    # Aggregator utilization: first-level Chama aggregator well under 1
    # core; BW configuration hotter but sub-core in our model.
    chama, bw = results["utilization"]
    assert chama.core_pct < 1.0
    assert bw.core_pct < 100.0


def test_fanin_sweep_sharded_matches_inline(bench_once):
    """``REPRO_SHARDS`` fan-out: the scaled sock sweep run across two
    forked shard workers returns point-for-point the same dataclasses
    as the inline sweep — the disjoint-world byte-identity contract."""
    sharded = bench_once(sweep_transport, "sock", scale=SMOKE_SCALE,
                         nshards=2)
    inline = sweep_transport("sock", scale=SMOKE_SCALE)
    assert sharded == inline
    assert max_fanin(sharded) * SMOKE_SCALE == \
        get_transport_profile("sock").max_connections


def test_fanin_sock_full_scale(bench_once):
    """Full-scale sock sweep: knee at the unscaled 9,216 capacity."""
    points = bench_once(sweep_transport, "sock")
    knee = max_fanin(points)
    assert knee == get_transport_profile("sock").max_connections
    past = max(points, key=lambda p: p.n_samplers)
    assert past.completeness < 0.99
    assert past.refused > 0
    assert past.connected == knee  # surplus producers refused at capacity
