#!/usr/bin/env python
"""CI smoke: telemetry overhead on the PR-1 fast path stays < 5%.

Times the shared sample→transport→store pipeline unit
(``pipeline_unit.build_unit``) with telemetry enabled and disabled on
*this* machine and asserts the relative overhead.  The enabled set
covers the full observability plane: histograms/counters, the pipeline
tracer, and (PR 7) the freshness tracker, flight recorder, and span
ring — the instrumented closure pays every per-stored-update obs cost
the aggregator's hot path pays.  The comparison is
relative, so the assertion is machine-independent; to stay robust on
noisy shared runners the two variants are timed in strict alternation
(each pair of calls experiences the same interference), GC is paused
during the timed region, and the best (lowest-overhead) of several
trials is kept — external noise can only inflate the estimate, never
deflate it below the true overhead floor.

    PYTHONPATH=src python benchmarks/check_obs_overhead.py
"""

from __future__ import annotations

import gc
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from pipeline_unit import build_unit  # noqa: E402

LIMIT_PCT = 5.0
WARMUP = 600
PAIRS = 20_000
TRIALS = 4  # the first trial doubles as process warmup and runs hot


def measure_overhead_pct() -> tuple[float, float, float]:
    """One trial: mean ns/op for (bare, instrumented) and overhead %."""
    clock = time.perf_counter
    with tempfile.TemporaryDirectory() as d_bare, \
            tempfile.TemporaryDirectory() as d_inst:
        bare, close_bare = build_unit(d_bare, instrumented=False)
        inst, close_inst = build_unit(d_inst, instrumented=True)
        for _ in range(WARMUP):
            bare()
            inst()
        sum_bare = sum_inst = 0.0
        gc.disable()
        try:
            for _ in range(PAIRS):
                t0 = clock()
                bare()
                t1 = clock()
                inst()
                t2 = clock()
                sum_bare += t1 - t0
                sum_inst += t2 - t1
        finally:
            gc.enable()
        close_bare()
        close_inst()
    bare_ns = sum_bare / PAIRS * 1e9
    inst_ns = sum_inst / PAIRS * 1e9
    return bare_ns, inst_ns, 100.0 * (inst_ns - bare_ns) / bare_ns


def main() -> int:
    best = None
    for trial in range(TRIALS):
        bare_ns, inst_ns, pct = measure_overhead_pct()
        print(f"trial {trial}: bare {bare_ns:8.0f} ns/op   "
              f"instrumented {inst_ns:8.0f} ns/op   overhead {pct:+.2f}%")
        if best is None or pct < best:
            best = pct
        if best < LIMIT_PCT:
            break  # already demonstrably under the limit
    print(f"best overhead: {best:+.2f}%  (limit {LIMIT_PCT}%)")
    if best >= LIMIT_PCT:
        print("FAIL: telemetry overhead exceeds the limit on every trial")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
